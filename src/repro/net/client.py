"""Asyncio memcached client (the web server's view of one cache node).

Speaks the same text protocol as :mod:`repro.net.server` — and therefore as
real memcached for the standard commands.  Adds the two digest calls of
Section V-A3 as first-class methods: :meth:`snapshot_digest` and
:meth:`fetch_digest`, which a transition coordinator uses to broadcast
digests to web servers.

**Fault behaviour.**  A memcached text-protocol exchange has no framing
beyond the reply itself, so *any* mid-reply failure — timeout, reset, EOF,
or an unparseable line — leaves the stream position unknown; reading on
would parse garbage (or worse, a later reply as this one's).  The client
therefore *poisons* the connection on every such failure: the transport is
aborted, :attr:`broken` is set, and the next call transparently reconnects
(``auto_reconnect``, on by default) instead of resuming the dead stream.
Transit failures surface as :class:`~repro.errors.TransportError` — the
transient class retry policies act on — while genuinely malformed replies
stay :class:`~repro.errors.ProtocolError`.  An optional per-operation
``timeout`` bounds every read/write so a blackholed server cannot hang a
request forever.
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Dict, Optional, TypeVar

from dataclasses import dataclass

from repro.bloom.bloom import BloomFilter
from repro.errors import ProtocolError, TransportError
from repro.net import protocol as proto

T = TypeVar("T")


@dataclass(frozen=True)
class CasValue:
    """A value paired with its cas unique id (the ``gets`` reply)."""

    value: bytes
    cas: int


class MemcachedClient:
    """One TCP connection to a memcached-protocol server.

    Use as an async context manager or call :meth:`connect` / :meth:`close`.
    Not safe for concurrent use from multiple tasks; pool instances instead
    (the paper pools connections with Apache Commons Pool).

    Args:
        host/port: the server endpoint.
        timeout: per-operation time limit in seconds applied to every
            network read/write (``None``: wait forever, the pre-hardening
            behaviour).  A timeout poisons the connection — the stream
            position is unknown once a reply is abandoned halfway.
        auto_reconnect: when True (default), a call on a broken or closed
            connection dials a fresh one instead of failing; when False it
            raises :class:`~repro.errors.TransportError` so a pool can
            eject the client.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: Optional[float] = None,
        auto_reconnect: bool = True,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.auto_reconnect = auto_reconnect
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._broken = False
        self._ever_connected = False
        self._ever_dialed = False
        #: fresh connections dialled after a poisoned one (diagnostics)
        self.reconnects = 0

    @property
    def broken(self) -> bool:
        """True after a mid-stream failure until the next reconnect."""
        return self._broken

    @property
    def connected(self) -> bool:
        return self._reader is not None and not self._broken

    async def connect(self) -> "MemcachedClient":
        self._ever_dialed = True
        open_coro = asyncio.open_connection(self.host, self.port)
        if self.timeout is not None:
            try:
                self._reader, self._writer = await asyncio.wait_for(
                    open_coro, self.timeout
                )
            except asyncio.TimeoutError as exc:
                raise TransportError(
                    f"connect to {self.host}:{self.port} timed out "
                    f"after {self.timeout}s"
                ) from exc
        else:
            self._reader, self._writer = await open_coro
        self._broken = False
        self._ever_connected = True
        return self

    async def close(self) -> None:
        if self._writer is not None:
            try:
                self._writer.write(b"quit\r\n")
                await self._writer.drain()
            except (ConnectionError, OSError):  # pragma: no cover
                pass
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass
            self._reader = None
            self._writer = None
        self._broken = False

    async def __aenter__(self) -> "MemcachedClient":
        return await self.connect()

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # ------------------------------------------------------------ plumbing

    def _poison(self) -> None:
        """Mark the stream unusable and drop the transport on the floor.

        No ``quit`` handshake: the stream position is unknown, so the only
        safe move is an abort.  The next call reconnects (or raises, with
        ``auto_reconnect=False``).
        """
        self._broken = True
        if self._writer is not None:
            try:
                self._writer.transport.abort()
            except Exception:  # pragma: no cover - transport already dead
                pass
        self._reader = None
        self._writer = None

    def _desync(self, message: str) -> ProtocolError:
        """Poison the stream and build the error for an unparseable reply."""
        self._poison()
        return ProtocolError(message)

    async def _ensure_ready(self) -> None:
        """(Re)connect a broken/closed connection before the next exchange.

        Auto-reconnect requires one prior explicit :meth:`connect` attempt
        (successful or not): calling protocol methods on a client nobody
        ever tried to connect is a programming error, not a fault.
        """
        if self._reader is not None and not self._broken:
            return
        if not self._ever_dialed:
            raise ProtocolError("client is not connected")
        if not self.auto_reconnect:
            raise TransportError(
                f"connection to {self.host}:{self.port} is broken"
            )
        redial = self._ever_connected
        await self.connect()
        if redial:
            self.reconnects += 1

    async def _io(self, awaitable: Awaitable[T]) -> T:
        """Await a read/write under the per-op timeout; timeouts poison."""
        if self.timeout is None:
            return await awaitable
        try:
            return await asyncio.wait_for(awaitable, self.timeout)
        except asyncio.TimeoutError as exc:
            self._poison()
            raise TransportError(
                f"{self.host}:{self.port} did not answer within "
                f"{self.timeout}s"
            ) from exc

    async def _command(self, line: bytes) -> None:
        await self._ensure_ready()
        try:
            self._writer.write(line)
            await self._io(self._writer.drain())
        except (ConnectionError, OSError) as exc:
            self._poison()
            raise TransportError(
                f"write to {self.host}:{self.port} failed: {exc}"
            ) from exc

    async def _read_line(self) -> bytes:
        try:
            line = await self._io(self._reader.readline())
        except (ConnectionError, OSError) as exc:
            self._poison()
            raise TransportError(
                f"read from {self.host}:{self.port} failed: {exc}"
            ) from exc
        if not line:
            self._poison()
            raise TransportError("connection closed by server")
        return line.rstrip(b"\r\n")

    async def _read_block(self, count: int) -> bytes:
        """Read exactly *count* bytes of a value block; EOF/reset poison."""
        try:
            return await self._io(self._reader.readexactly(count))
        except asyncio.IncompleteReadError as exc:
            self._poison()
            raise TransportError(
                f"server closed mid-reply "
                f"({len(exc.partial)}/{count} bytes received)"
            ) from exc
        except (ConnectionError, OSError) as exc:
            self._poison()
            raise TransportError(
                f"read from {self.host}:{self.port} failed: {exc}"
            ) from exc

    # ------------------------------------------------------------- basics

    async def get(self, key: str) -> Optional[bytes]:
        """Value for *key*, or ``None`` on miss."""
        proto.validate_key(key)
        await self._command(f"get {key}\r\n".encode("utf-8"))
        value: Optional[bytes] = None
        while True:
            line = await self._read_line()
            if line == b"END":
                return value
            if line.startswith(b"VALUE "):
                parts = line.decode("utf-8").split(" ")
                try:
                    num_bytes = int(parts[3])
                except (IndexError, ValueError):
                    raise self._desync(f"malformed VALUE line: {line!r}")
                block = await self._read_block(num_bytes + 2)
                value = block[:-2]
            elif line.startswith((b"SERVER_ERROR", b"CLIENT_ERROR", b"ERROR")):
                # A complete error reply: the stream stays in sync.
                raise ProtocolError(line.decode("utf-8", "replace"))
            else:
                raise self._desync(f"unexpected get response line: {line!r}")

    async def set(
        self, key: str, value: bytes, flags: int = 0, exptime: int = 0
    ) -> bool:
        """Store *key*; True on STORED."""
        proto.validate_key(key)
        header = f"set {key} {flags} {exptime} {len(value)}\r\n".encode("utf-8")
        await self._command(header + value + proto.CRLF)
        reply = await self._read_line()
        if reply == b"STORED":
            return True
        if reply == b"NOT_STORED":
            return False
        raise self._desync(f"unexpected set reply: {reply!r}")

    async def add(self, key: str, value: bytes, flags: int = 0, exptime: int = 0) -> bool:
        """Store only if absent; True on STORED."""
        proto.validate_key(key)
        header = f"add {key} {flags} {exptime} {len(value)}\r\n".encode("utf-8")
        await self._command(header + value + proto.CRLF)
        return await self._read_line() == b"STORED"

    async def get_multi(self, keys) -> Dict[str, bytes]:
        """Batched get: one round trip for many keys; returns only the hits.

        The paper's web servers batch per-request lookups the same way
        (spymemcached pipelines multigets); one command line, one END.
        """
        key_list = list(keys)
        for key in key_list:
            proto.validate_key(key)
        if not key_list:
            return {}
        await self._command(("get " + " ".join(key_list) + "\r\n").encode("utf-8"))
        out: Dict[str, bytes] = {}
        while True:
            line = await self._read_line()
            if line == b"END":
                return out
            if line.startswith(b"VALUE "):
                parts = line.decode("utf-8").split(" ")
                try:
                    num_bytes = int(parts[3])
                except (IndexError, ValueError):
                    raise self._desync(f"malformed VALUE line: {line!r}")
                block = await self._read_block(num_bytes + 2)
                out[parts[1]] = block[:-2]
            elif line.startswith((b"SERVER_ERROR", b"CLIENT_ERROR", b"ERROR")):
                raise ProtocolError(line.decode("utf-8", "replace"))
            else:
                raise self._desync(f"unexpected get response line: {line!r}")

    async def set_multi(
        self, items, flags: int = 0, exptime: int = 0
    ) -> int:
        """Pipelined sets: write every command, flush once, then read the
        replies in order; returns how many were STORED.

        The write-back half of a batched retrieval: one round trip per
        server for the whole batch, the same amortization ``get_multi``
        gives the probe half.
        """
        pairs = list(items.items() if isinstance(items, dict) else items)
        if not pairs:
            return 0
        buffer = bytearray()
        for key, value in pairs:
            proto.validate_key(key)
            buffer += f"set {key} {flags} {exptime} {len(value)}\r\n".encode(
                "utf-8"
            )
            buffer += value + proto.CRLF
        await self._command(bytes(buffer))
        stored = 0
        for _ in pairs:
            reply = await self._read_line()
            if reply == b"STORED":
                stored += 1
            elif reply != b"NOT_STORED":
                # Mid-pipeline garbage: the remaining replies are
                # unreadable — poison so the next call starts clean.
                raise self._desync(f"unexpected set reply: {reply!r}")
        return stored

    async def gets(self, key: str) -> Optional["CasValue"]:
        """Value plus its cas unique id, or ``None`` on miss."""
        proto.validate_key(key)
        await self._command(f"gets {key}\r\n".encode("utf-8"))
        result: Optional[CasValue] = None
        while True:
            line = await self._read_line()
            if line == b"END":
                return result
            if line.startswith(b"VALUE "):
                parts = line.decode("utf-8").split(" ")
                try:
                    num_bytes = int(parts[3])
                    cas = int(parts[4]) if len(parts) > 4 else 0
                except (IndexError, ValueError):
                    raise self._desync(f"malformed VALUE line: {line!r}")
                block = await self._read_block(num_bytes + 2)
                result = CasValue(value=block[:-2], cas=cas)
            else:
                raise self._desync(f"unexpected gets response line: {line!r}")

    async def cas(
        self, key: str, value: bytes, cas: int, flags: int = 0, exptime: int = 0
    ) -> str:
        """Compare-and-swap; returns ``stored``, ``exists`` or ``not_found``."""
        proto.validate_key(key)
        header = (
            f"cas {key} {flags} {exptime} {len(value)} {cas}\r\n"
        ).encode("utf-8")
        await self._command(header + value + proto.CRLF)
        reply = await self._read_line()
        table = {b"STORED": "stored", b"EXISTS": "exists",
                 b"NOT_FOUND": "not_found"}
        if reply not in table:
            raise self._desync(f"unexpected cas reply: {reply!r}")
        return table[reply]

    async def _concat(self, verb: str, key: str, value: bytes) -> bool:
        proto.validate_key(key)
        header = f"{verb} {key} 0 0 {len(value)}\r\n".encode("utf-8")
        await self._command(header + value + proto.CRLF)
        return await self._read_line() == b"STORED"

    async def append(self, key: str, value: bytes) -> bool:
        """Append to an existing value; False if the key is absent."""
        return await self._concat("append", key, value)

    async def prepend(self, key: str, value: bytes) -> bool:
        """Prepend to an existing value; False if the key is absent."""
        return await self._concat("prepend", key, value)

    async def _arith(self, verb: str, key: str, delta: int) -> Optional[int]:
        proto.validate_key(key)
        await self._command(f"{verb} {key} {delta}\r\n".encode("utf-8"))
        reply = await self._read_line()
        if reply == b"NOT_FOUND":
            return None
        if reply.startswith((b"CLIENT_ERROR", b"SERVER_ERROR", b"ERROR")):
            raise ProtocolError(reply.decode("utf-8", "replace"))
        return int(reply)

    async def incr(self, key: str, delta: int = 1) -> Optional[int]:
        """Increment a decimal value; returns the new value or ``None``."""
        return await self._arith("incr", key, delta)

    async def decr(self, key: str, delta: int = 1) -> Optional[int]:
        """Decrement (clamped at 0); returns the new value or ``None``."""
        return await self._arith("decr", key, delta)

    async def touch(self, key: str, exptime: int) -> bool:
        """Reset a key's expiry; False if the key is absent."""
        proto.validate_key(key)
        await self._command(f"touch {key} {exptime}\r\n".encode("utf-8"))
        return await self._read_line() == b"TOUCHED"

    async def delete(self, key: str) -> bool:
        """Delete *key*; True if it existed."""
        proto.validate_key(key)
        await self._command(f"delete {key}\r\n".encode("utf-8"))
        return await self._read_line() == b"DELETED"

    async def stats(self) -> Dict[str, str]:
        """The server's ``stats`` map."""
        await self._command(b"stats\r\n")
        out: Dict[str, str] = {}
        while True:
            line = await self._read_line()
            if line == b"END":
                return out
            if line.startswith(b"STAT "):
                _, name, value = line.decode("utf-8").split(" ", 2)
                out[name] = value
            else:
                raise self._desync(f"unexpected stats line: {line!r}")

    async def flush_all(self) -> None:
        """Drop everything on the server."""
        await self._command(b"flush_all\r\n")
        reply = await self._read_line()
        if reply != b"OK":
            raise self._desync(f"unexpected flush_all reply: {reply!r}")

    async def version(self) -> str:
        await self._command(b"version\r\n")
        reply = await self._read_line()
        if not reply.startswith(b"VERSION "):
            raise self._desync(f"unexpected version reply: {reply!r}")
        return reply[len(b"VERSION "):].decode("utf-8")

    # ------------------------------------------------------- digest calls

    async def snapshot_digest(self) -> None:
        """Ask the server to freeze its digest (``get SET_BLOOM_FILTER``)."""
        ack = await self.get(proto.KEY_SNAPSHOT)
        if ack is None:
            raise ProtocolError("server did not acknowledge digest snapshot")

    async def fetch_digest(self, num_bits: int, num_hashes: int = 4) -> BloomFilter:
        """Retrieve the frozen digest (``get BLOOM_FILTER``) as a Bloom filter.

        The caller supplies the filter geometry — exactly as the paper's web
        servers know the cluster-wide Bloom configuration out of band.
        """
        payload = await self.get(proto.KEY_FETCH_DIGEST)
        if payload is None:
            raise ProtocolError("no digest snapshot on server; call snapshot_digest")
        return BloomFilter.from_bytes(payload, num_bits, num_hashes)
