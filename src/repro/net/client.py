"""Pipelined asyncio memcached client (the web server's view of one node).

Speaks the same text protocol as :mod:`repro.net.server` — and therefore as
real memcached for the standard commands.  Adds the two digest calls of
Section V-A3 as first-class methods: :meth:`snapshot_digest` and
:meth:`fetch_digest`, which a transition coordinator uses to broadcast
digests to web servers.

**Transport.**  One TCP connection carries many in-flight commands: each
command appends its reply shape to the incremental
:class:`~repro.net.parser.ReplyParser` and a future to a FIFO; writes from
the same event-loop tick are coalesced into one ``send`` and the reply
stream is matched strictly in order as chunks arrive (``data_received`` →
``feed``), so a burst of *k* gets costs ~one round trip instead of *k*.
``TCP_NODELAY`` is set so the small writes are not Nagle-delayed.  Pass
``pipeline=False`` for the pre-pipelining discipline — one in-flight
command, serialized by an internal lock — which is also the A/B baseline
the net throughput bench measures against.

**Fault behaviour.**  A memcached text-protocol exchange has no framing
beyond the reply itself, so *any* mid-reply failure — timeout, reset, EOF,
or an unparseable line — leaves the stream position unknown; reading on
would parse garbage (or worse, pair a later reply with an earlier queued
command).  The client therefore *poisons* the connection on every such
failure: the transport is aborted, :attr:`broken` is set, **every queued
future fails** with :class:`~repro.errors.TransportError` — the transient
class retry policies act on — and the next call transparently reconnects
(``auto_reconnect``, on by default) instead of resuming the dead stream.
The one command whose reply was actually malformed gets
:class:`~repro.errors.ProtocolError`; complete ``SERVER_ERROR``-family
lines raise :class:`ProtocolError` *without* poisoning (the stream is
still framed).  An optional per-operation ``timeout`` bounds every
exchange — and :meth:`close` — so a blackholed server can hang neither a
request nor a shutdown.
"""

from __future__ import annotations

import asyncio
import socket
from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from dataclasses import dataclass

from repro.bloom.bloom import BloomFilter
from repro.errors import ClientOverloadError, ProtocolError, TransportError
from repro.net import protocol as proto
from repro.net.parser import (
    CAS_TOKENS,
    DELETE_TOKENS,
    Desync,
    ErrorLine,
    LineReply,
    OK_TOKENS,
    ReplyParser,
    ReplyShape,
    STORE_TOKENS,
    StatsReply,
    TOUCH_TOKENS,
    ValueItem,
    ValuesReply,
    arith_token,
    version_token,
)

#: close() must never hang on a blackholed peer even with timeout=None
CLOSE_TIMEOUT = 5.0


@dataclass(frozen=True)
class CasValue:
    """A value paired with its cas unique id (the ``gets`` reply)."""

    value: bytes
    cas: int


class _ClientProtocol(asyncio.Protocol):
    """The transport half of one pipelined connection.

    Owns the reply parser, the FIFO of pending futures, and the
    per-tick write coalescing buffer; delegates fault classification to
    the owning :class:`MemcachedClient`.
    """

    def __init__(self, client: "MemcachedClient") -> None:
        self.client = client
        self.parser = ReplyParser()
        self.pending: Deque[asyncio.Future] = deque()
        self.transport: Optional[asyncio.Transport] = None
        self.closed = asyncio.get_running_loop().create_future()
        self._out = bytearray()
        self._flush_scheduled = False

    # --------------------------------------------------------- transport

    def connection_made(self, transport) -> None:
        self.transport = transport
        if self.client.nodelay:
            sock = transport.get_extra_info("socket")
            if sock is not None:
                try:
                    sock.setsockopt(
                        socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
                    )
                except OSError:  # pragma: no cover - non-TCP transports
                    pass

    def connection_lost(self, exc: Optional[Exception]) -> None:
        if not self.closed.done():
            self.closed.set_result(None)
        self.client._on_connection_lost(self, exc)

    def data_received(self, data: bytes) -> None:
        try:
            results = self.parser.feed(data)
        except Desync as exc:
            # Replies completed before the fault are unambiguous:
            # deliver them, then poison what remains.
            self._deliver(exc.results)
            self.client._on_desync(self, str(exc))
            return
        self._deliver(results)

    def _deliver(self, results) -> None:
        for result in results:
            if not self.pending:  # pragma: no cover - parser guards this
                self.client._on_desync(self, "reply with no pending command")
                return
            future = self.pending.popleft()
            if not future.done():
                future.set_result(result)

    def eof_received(self) -> bool:
        return False  # let connection_lost run and fail the queue

    # ------------------------------------------------------------ writes

    def issue(self, shapes: Sequence[ReplyShape], payload: bytes,
              futures: Sequence[asyncio.Future]) -> None:
        """Queue one coalesced write carrying len(shapes) commands."""
        if self.transport is None or self.transport.is_closing():
            raise TransportError("connection is closed")
        for shape, future in zip(shapes, futures):
            self.parser.expect(shape)
            self.pending.append(future)
        self._out += payload
        if not self._flush_scheduled:
            self._flush_scheduled = True
            asyncio.get_running_loop().call_soon(self.flush)

    def send_raw(self, payload: bytes) -> None:
        """Fire-and-forget bytes (the ``quit`` farewell)."""
        self._out += payload
        self.flush()

    def flush(self) -> None:
        """Push every write coalesced this tick in one ``send``."""
        self._flush_scheduled = False
        if self._out and self.transport is not None \
                and not self.transport.is_closing():
            self.transport.write(bytes(self._out))
        self._out.clear()

    # ------------------------------------------------------------- faults

    def fail_pending(self, error_factory) -> None:
        """Fail every queued future (poison path); FIFO order."""
        while self.pending:
            future = self.pending.popleft()
            if not future.done():
                future.set_exception(error_factory())

    def abort(self) -> None:
        if self.transport is not None:
            try:
                self.transport.abort()
            except Exception:  # pragma: no cover - transport already dead
                pass


class MemcachedClient:
    """One TCP connection to a memcached-protocol server.

    Use as an async context manager or call :meth:`connect` / :meth:`close`.
    With ``pipeline=True`` (default) the connection is safe for concurrent
    use from many tasks: commands are pipelined and replies matched in
    FIFO order.  :class:`~repro.net.pool.ConnectionPool` multiplexes
    several such connections per server.

    Args:
        host/port: the server endpoint.
        timeout: per-operation time limit in seconds applied to every
            exchange (``None``: wait forever, the pre-hardening
            behaviour — except :meth:`close`, which is always bounded).
            A timeout poisons the connection — the stream position is
            unknown once a reply is abandoned halfway.
        auto_reconnect: when True (default), a call on a broken or closed
            connection dials a fresh one instead of failing; when False it
            raises :class:`~repro.errors.TransportError` so a pool can
            eject the client.
        pipeline: allow many in-flight commands (default).  ``False``
            restores the strict request/response discipline: an internal
            lock admits one exchange at a time (the A/B baseline).
        nodelay: set ``TCP_NODELAY`` on the socket (default True).
        max_inflight: cap on queued-but-unanswered commands (``None`` =
            unbounded).  An exchange that would push past the cap raises
            :class:`~repro.errors.ClientOverloadError` *before* writing
            anything — never retried, so local overload fails fast
            instead of stacking futures behind a saturated connection.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: Optional[float] = None,
        auto_reconnect: bool = True,
        pipeline: bool = True,
        nodelay: bool = True,
        max_inflight: Optional[int] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.auto_reconnect = auto_reconnect
        self.pipeline = pipeline
        self.nodelay = nodelay
        if max_inflight is not None and max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        self.max_inflight = max_inflight
        self._protocol: Optional[_ClientProtocol] = None
        self._serial: Optional[asyncio.Lock] = None if pipeline else asyncio.Lock()
        self._broken = False
        self._closing = False
        self._ever_connected = False
        self._ever_dialed = False
        #: fresh connections dialled after a poisoned one (diagnostics)
        self.reconnects = 0
        #: exchanges refused at the max_inflight window (diagnostics)
        self.overflows = 0

    @property
    def broken(self) -> bool:
        """True after a mid-stream failure until the next reconnect."""
        return self._broken

    @property
    def connected(self) -> bool:
        return self._protocol is not None and not self._broken

    @property
    def inflight(self) -> int:
        """Commands written whose replies have not yet arrived."""
        if self._protocol is None:
            return 0
        return len(self._protocol.pending)

    async def connect(self) -> "MemcachedClient":
        self._ever_dialed = True
        loop = asyncio.get_running_loop()
        dial = loop.create_connection(
            lambda: _ClientProtocol(self), self.host, self.port
        )
        if self.timeout is not None:
            try:
                _, protocol = await asyncio.wait_for(dial, self.timeout)
            except asyncio.TimeoutError as exc:
                raise TransportError(
                    f"connect to {self.host}:{self.port} timed out "
                    f"after {self.timeout}s"
                ) from exc
        else:
            _, protocol = await dial
        self._protocol = protocol
        self._broken = False
        self._closing = False
        self._ever_connected = True
        return self

    async def close(self) -> None:
        """Say ``quit`` and close; never hangs — bounded by ``timeout``
        (or a default) and aborted on expiry, so a blackholed server
        cannot wedge shutdown."""
        protocol = self._protocol
        self._protocol = None
        self._broken = False
        if protocol is None:
            return
        self._closing = True
        try:
            bound = self.timeout if self.timeout is not None else CLOSE_TIMEOUT
            try:
                protocol.send_raw(b"quit\r\n")
                if protocol.transport is not None:
                    protocol.transport.close()
                await asyncio.wait_for(asyncio.shield(protocol.closed), bound)
            except (asyncio.TimeoutError, ConnectionError, OSError):
                protocol.abort()
        finally:
            self._closing = False
            protocol.fail_pending(
                lambda: TransportError("connection closed while in flight")
            )

    async def __aenter__(self) -> "MemcachedClient":
        return await self.connect()

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # ------------------------------------------------------------ plumbing

    def _poison(self) -> None:
        """Mark the stream unusable and drop the transport on the floor.

        No ``quit`` handshake: the stream position is unknown, so the only
        safe move is an abort.  **Every queued future fails** with
        :class:`TransportError` — with pipelining there may be many — and
        the next call reconnects (or raises, with
        ``auto_reconnect=False``).
        """
        self._broken = True
        protocol = self._protocol
        self._protocol = None
        if protocol is not None:
            protocol.fail_pending(
                lambda: TransportError(
                    f"{self.host}:{self.port}: connection poisoned with "
                    "the command still in flight"
                )
            )
            protocol.abort()

    def _on_desync(self, protocol: _ClientProtocol, message: str) -> None:
        """Parser desync: the head command gets the protocol error, every
        later queued command a transient transport error, and the
        connection is poisoned — nothing is ever mispaired."""
        if protocol is not self._protocol:
            return
        if protocol.pending:
            head = protocol.pending.popleft()
            if not head.done():
                head.set_exception(ProtocolError(message))
        self._poison()

    def _on_connection_lost(
        self, protocol: _ClientProtocol, exc: Optional[Exception]
    ) -> None:
        """EOF/reset from the peer: fail the whole queue transiently."""
        if protocol is not self._protocol:
            return  # superseded (poisoned or replaced) — already handled
        self._protocol = None
        self._broken = True
        if exc is not None:
            message = f"read from {self.host}:{self.port} failed: {exc}"
        else:
            message = "connection closed by server"
        protocol.fail_pending(lambda: TransportError(message))

    async def _ensure_ready(self) -> _ClientProtocol:
        """(Re)connect a broken/closed connection before the next exchange.

        Auto-reconnect requires one prior explicit :meth:`connect` attempt
        (successful or not): calling protocol methods on a client nobody
        ever tried to connect is a programming error, not a fault.
        """
        if self._protocol is not None and not self._broken:
            return self._protocol
        if not self._ever_dialed:
            raise ProtocolError("client is not connected")
        if not self.auto_reconnect:
            raise TransportError(
                f"connection to {self.host}:{self.port} is broken"
            )
        redial = self._ever_connected
        await self.connect()
        if redial:
            self.reconnects += 1
        assert self._protocol is not None
        return self._protocol

    async def _await_reply(self, future: asyncio.Future):
        """One reply under the per-op timeout; timeouts poison the queue."""
        if self.timeout is None:
            result = await future
        else:
            try:
                result = await asyncio.wait_for(
                    asyncio.shield(future), self.timeout
                )
            except asyncio.TimeoutError as exc:
                self._poison()
                if future.done() and not future.cancelled():
                    future.exception()  # retrieved; TimeoutError wins below
                raise TransportError(
                    f"{self.host}:{self.port} did not answer within "
                    f"{self.timeout}s"
                ) from exc
        if isinstance(result, ErrorLine):
            # A complete error reply: the stream stays in sync.
            result.raise_()
        return result

    async def _exchange(self, shape: ReplyShape, payload: bytes):
        """Issue one command and await its reply."""
        if self._serial is not None:
            async with self._serial:
                return await self._exchange_pipelined(shape, payload)
        return await self._exchange_pipelined(shape, payload)

    def _check_window(self, protocol: "_ClientProtocol", n: int) -> None:
        """Refuse (never queue) when *n* more commands would exceed the
        ``max_inflight`` window."""
        if self.max_inflight is None:
            return
        queued = len(protocol.pending)
        if queued + n > self.max_inflight:
            self.overflows += 1
            raise ClientOverloadError(
                f"{self.host}:{self.port}: {queued} commands queued, "
                f"{n} more would exceed the {self.max_inflight} window"
            )

    async def _exchange_pipelined(self, shape: ReplyShape, payload: bytes):
        protocol = await self._ensure_ready()
        self._check_window(protocol, 1)
        future = asyncio.get_running_loop().create_future()
        try:
            protocol.issue((shape,), payload, (future,))
        except TransportError:
            # Lost the race with a concurrent poison/close: transient.
            self._poison()
            raise
        return await self._await_reply(future)

    async def _exchange_many(
        self, shapes: Sequence[ReplyShape], payload: bytes
    ) -> List[object]:
        """Issue several commands in one coalesced write; await all
        replies (order preserved).  Raises the first failure after every
        reply future has settled — no future is left unretrieved."""
        if self._serial is not None:
            async with self._serial:
                return await self._exchange_many_pipelined(shapes, payload)
        return await self._exchange_many_pipelined(shapes, payload)

    async def _exchange_many_pipelined(
        self, shapes: Sequence[ReplyShape], payload: bytes
    ) -> List[object]:
        protocol = await self._ensure_ready()
        self._check_window(protocol, len(shapes))
        loop = asyncio.get_running_loop()
        futures = [loop.create_future() for _ in shapes]
        try:
            protocol.issue(shapes, payload, futures)
        except TransportError:
            self._poison()
            for future in futures:
                if future.done() and not future.cancelled():
                    future.exception()
            raise
        results: List[object] = []
        first_error: Optional[BaseException] = None
        for future in futures:
            try:
                results.append(await self._await_reply(future))
            except BaseException as error:  # noqa: BLE001 - re-raised below
                if first_error is None:
                    first_error = error
                results.append(error)
        if first_error is not None:
            raise first_error
        return results

    # ------------------------------------------------------- raw exchanges

    async def execute(self, payload: bytes, shape: ReplyShape):
        """Escape hatch: write *payload* as one command and parse its
        reply with *shape* — for protocol surfaces the client does not
        wrap (``replace``, ``stats slabs``, protocol tests).  Returns the
        shape's result (line bytes, :class:`ValueItem` list, or stats
        dict); complete error replies raise
        :class:`~repro.errors.ProtocolError` without poisoning."""
        return await self._exchange(shape, payload)

    async def send_noreply(self, payload: bytes) -> None:
        """Fire-and-forget write with no reply expected (``noreply``
        commands); coalesced with neighbouring writes like any other."""
        protocol = await self._ensure_ready()
        protocol.issue((), payload, ())

    # ------------------------------------------------------------- basics

    async def get(self, key: str) -> Optional[bytes]:
        """Value for *key*, or ``None`` on miss."""
        proto.validate_key(key)
        items = await self._exchange(
            ValuesReply(), f"get {key}\r\n".encode("utf-8")
        )
        return items[-1].value if items else None

    async def set(
        self, key: str, value: bytes, flags: int = 0, exptime: int = 0
    ) -> bool:
        """Store *key*; True on STORED."""
        proto.validate_key(key)
        header = f"set {key} {flags} {exptime} {len(value)}\r\n".encode("utf-8")
        reply = await self._exchange(
            LineReply(STORE_TOKENS), header + value + proto.CRLF
        )
        return reply == b"STORED"

    async def add(self, key: str, value: bytes, flags: int = 0, exptime: int = 0) -> bool:
        """Store only if absent; True on STORED."""
        proto.validate_key(key)
        header = f"add {key} {flags} {exptime} {len(value)}\r\n".encode("utf-8")
        reply = await self._exchange(
            LineReply(STORE_TOKENS), header + value + proto.CRLF
        )
        return reply == b"STORED"

    async def get_multi(self, keys) -> Dict[str, bytes]:
        """Batched get: one round trip for many keys; returns only the hits.

        The paper's web servers batch per-request lookups the same way
        (spymemcached pipelines multigets); one command line, one END.
        """
        key_list = list(keys)
        for key in key_list:
            proto.validate_key(key)
        if not key_list:
            return {}
        items = await self._exchange(
            ValuesReply(),
            ("get " + " ".join(key_list) + "\r\n").encode("utf-8"),
        )
        return {item.key: item.value for item in items}

    async def get_many(self, keys) -> List[Optional[bytes]]:
        """Pipelined single-key gets: one command per key, all coalesced
        into one write, replies matched in order; returns one value (or
        ``None`` on miss) per key, in key order.

        Unlike :meth:`get_multi` (one multi-key command) this keeps the
        per-key command shape — the burst a page of concurrent per-key
        callers produces — without paying a task per key; it is also the
        net throughput bench's pipelined page fetch.
        """
        key_list = list(keys)
        for key in key_list:
            proto.validate_key(key)
        if not key_list:
            return []
        payload = "".join(f"get {key}\r\n" for key in key_list).encode(
            "utf-8"
        )
        shapes = [ValuesReply()] * len(key_list)
        replies = await self._exchange_many(shapes, payload)
        return [items[-1].value if items else None for items in replies]

    async def set_multi(
        self, items, flags: int = 0, exptime: int = 0
    ) -> int:
        """Pipelined sets: every command goes out in one coalesced write
        and the replies are matched in order; returns how many were
        STORED.

        The write-back half of a batched retrieval: one round trip per
        server for the whole batch, the same amortization ``get_multi``
        gives the probe half.
        """
        pairs = list(items.items() if isinstance(items, dict) else items)
        if not pairs:
            return 0
        buffer = bytearray()
        shapes: List[ReplyShape] = []
        for key, value in pairs:
            proto.validate_key(key)
            buffer += f"set {key} {flags} {exptime} {len(value)}\r\n".encode(
                "utf-8"
            )
            buffer += value + proto.CRLF
            shapes.append(LineReply(STORE_TOKENS))
        replies = await self._exchange_many(shapes, bytes(buffer))
        return sum(reply == b"STORED" for reply in replies)

    async def gets(self, key: str) -> Optional["CasValue"]:
        """Value plus its cas unique id, or ``None`` on miss."""
        proto.validate_key(key)
        items = await self._exchange(
            ValuesReply(), f"gets {key}\r\n".encode("utf-8")
        )
        if not items:
            return None
        item = items[-1]
        return CasValue(value=item.value, cas=item.cas or 0)

    async def cas(
        self, key: str, value: bytes, cas: int, flags: int = 0, exptime: int = 0
    ) -> str:
        """Compare-and-swap; returns ``stored``, ``exists`` or ``not_found``."""
        proto.validate_key(key)
        header = (
            f"cas {key} {flags} {exptime} {len(value)} {cas}\r\n"
        ).encode("utf-8")
        reply = await self._exchange(
            LineReply(CAS_TOKENS), header + value + proto.CRLF
        )
        table = {b"STORED": "stored", b"EXISTS": "exists",
                 b"NOT_FOUND": "not_found"}
        return table[reply]

    async def _concat(self, verb: str, key: str, value: bytes) -> bool:
        proto.validate_key(key)
        header = f"{verb} {key} 0 0 {len(value)}\r\n".encode("utf-8")
        reply = await self._exchange(
            LineReply(STORE_TOKENS), header + value + proto.CRLF
        )
        return reply == b"STORED"

    async def append(self, key: str, value: bytes) -> bool:
        """Append to an existing value; False if the key is absent."""
        return await self._concat("append", key, value)

    async def prepend(self, key: str, value: bytes) -> bool:
        """Prepend to an existing value; False if the key is absent."""
        return await self._concat("prepend", key, value)

    async def _arith(self, verb: str, key: str, delta: int) -> Optional[int]:
        proto.validate_key(key)
        reply = await self._exchange(
            LineReply(arith_token), f"{verb} {key} {delta}\r\n".encode("utf-8")
        )
        if reply == b"NOT_FOUND":
            return None
        return int(reply)

    async def incr(self, key: str, delta: int = 1) -> Optional[int]:
        """Increment a decimal value; returns the new value or ``None``."""
        return await self._arith("incr", key, delta)

    async def decr(self, key: str, delta: int = 1) -> Optional[int]:
        """Decrement (clamped at 0); returns the new value or ``None``."""
        return await self._arith("decr", key, delta)

    async def touch(self, key: str, exptime: int) -> bool:
        """Reset a key's expiry; False if the key is absent."""
        proto.validate_key(key)
        reply = await self._exchange(
            LineReply(TOUCH_TOKENS),
            f"touch {key} {exptime}\r\n".encode("utf-8"),
        )
        return reply == b"TOUCHED"

    async def delete(self, key: str) -> bool:
        """Delete *key*; True if it existed."""
        proto.validate_key(key)
        reply = await self._exchange(
            LineReply(DELETE_TOKENS), f"delete {key}\r\n".encode("utf-8")
        )
        return reply == b"DELETED"

    async def stats(self) -> Dict[str, str]:
        """The server's ``stats`` map."""
        return await self._exchange(StatsReply(), b"stats\r\n")

    async def flush_all(self) -> None:
        """Drop everything on the server."""
        await self._exchange(LineReply(OK_TOKENS), b"flush_all\r\n")

    async def version(self) -> str:
        reply = await self._exchange(LineReply(version_token), b"version\r\n")
        return reply[len(b"VERSION "):].decode("utf-8")

    # ------------------------------------------------------- digest calls

    async def snapshot_digest(self) -> None:
        """Ask the server to freeze its digest (``get SET_BLOOM_FILTER``)."""
        ack = await self.get(proto.KEY_SNAPSHOT)
        if ack is None:
            raise ProtocolError("server did not acknowledge digest snapshot")

    async def fetch_digest(self, num_bits: int, num_hashes: int = 4) -> BloomFilter:
        """Retrieve the frozen digest (``get BLOOM_FILTER``) as a Bloom filter.

        The caller supplies the filter geometry — exactly as the paper's web
        servers know the cluster-wide Bloom configuration out of band.
        """
        payload = await self.get(proto.KEY_FETCH_DIGEST)
        if payload is None:
            raise ProtocolError("no digest snapshot on server; call snapshot_digest")
        return BloomFilter.from_bytes(payload, num_bits, num_hashes)
