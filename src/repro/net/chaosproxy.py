"""A fault-injecting TCP proxy: the live realization of a FaultPlan.

Sits between a frontend and one cache server and misbehaves on purpose:

* ``reject_connections`` — refuse every new dial and abort live
  connections (the hard-down server);
* ``blackhole`` — accept and swallow traffic, never answer (the hung
  server; only per-op timeouts get a client out);
* ``reset_probability`` — abort the connection before forwarding a
  response chunk (the flaky NIC / dying process);
* ``partial_write_probability`` — forward a *prefix* of a response chunk
  and then abort, leaving the client mid-reply (the desync case the
  hardened :class:`~repro.net.client.MemcachedClient` must poison on);
* ``delay`` / ``delay_jitter`` — added response latency (the overloaded
  server the breaker should learn to avoid);
* ``drop_syn`` — connect-phase: the dial is swallowed: the handshake
  completes (userspace cannot veto the kernel's accept queue) but nothing
  is ever bridged or answered, which is what a dropped SYN looks like to
  the protocol layer — a live socket, total silence, timeout recovery;
* ``connect_delay`` — connect-phase: the accepted connection is held
  before the upstream bridge comes up (the slow-accept listener);
* ``drop_request_probability`` — request-direction loss: client-to-server
  chunks silently vanish, so the server never sees the command and the
  client waits on a reply that will never come.

The proxy realizes the declarative :class:`~repro.resilience.FaultPlan`
vocabulary, so chaos tests and the fault-tolerance bench script an outage
once (a :class:`~repro.resilience.FaultSchedule`) and replay it here,
while the simulator replays the same schedule as crash/repair events —
that shared script is what makes sim-vs-live degraded accounting
comparable.

All faults are injected on the **response** direction (server to client):
that is where the memcached text protocol keeps its state, so that is
where desync hurts.  Request bytes pass through unmodified so the
upstream server itself stays healthy — the *path* is what fails.
"""

from __future__ import annotations

import asyncio
import random
from typing import Optional, Set

from repro.errors import ConfigurationError
from repro.resilience import FaultPlan

__all__ = ["ChaosProxy"]

#: forwarding buffer; small enough that multi-line replies span chunks,
#: which is what makes partial-write faults land mid-reply
CHUNK = 4096


class ChaosProxy:
    """One fault-injecting proxy in front of one upstream server.

    Args:
        upstream_host: the real server's host.
        upstream_port: the real server's port.
        plan: the initial fault plan (:meth:`FaultPlan.none` by default).
        host: interface to listen on.

    Use ``await proxy.start()`` then point a frontend at ``proxy.port``.
    Swap behaviour mid-run with :meth:`set_plan` — setting a
    ``reject_connections`` plan also aborts live connections, so a
    "server killed mid-fetch" script is one call.
    """

    def __init__(
        self,
        upstream_host: str,
        upstream_port: int,
        plan: Optional[FaultPlan] = None,
        host: str = "127.0.0.1",
    ) -> None:
        self.upstream_host = upstream_host
        self.upstream_port = upstream_port
        self.host = host
        self._plan = plan or FaultPlan.none()
        self._rng = random.Random(self._plan.seed)
        self._server: Optional[asyncio.AbstractServer] = None
        self._tasks: Set[asyncio.Task] = set()
        self._writers: Set[asyncio.StreamWriter] = set()
        #: accepted client connections over the proxy's lifetime
        self.connections = 0
        #: dials refused while ``reject_connections`` was in force
        self.rejected = 0
        #: connections aborted by an injected reset
        self.resets = 0
        #: response chunks truncated then aborted
        self.partial_writes = 0
        #: response chunks swallowed by a blackhole plan
        self.blackholed = 0
        #: response chunks forwarded after an injected delay
        self.delayed = 0
        #: dials swallowed by a ``drop_syn`` plan (accepted, never bridged)
        self.syn_dropped = 0
        #: connections held by a ``connect_delay`` plan before bridging
        self.slow_accepts = 0
        #: request chunks silently dropped (request-direction loss)
        self.dropped_requests = 0

    # ------------------------------------------------------------ lifecycle

    @property
    def port(self) -> int:
        """The listening port (only valid after :meth:`start`)."""
        if self._server is None:
            raise ConfigurationError("proxy is not started")
        return self._server.sockets[0].getsockname()[1]

    async def start(self, port: int = 0) -> "ChaosProxy":
        """Begin listening (port 0: let the OS pick)."""
        if self._server is not None:
            raise ConfigurationError("proxy already started")
        self._server = await asyncio.start_server(
            self._handle_client, self.host, port
        )
        return self

    async def close(self) -> None:
        """Stop listening and tear down every live connection."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self._abort_live_connections()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        self._tasks.clear()

    async def __aenter__(self) -> "ChaosProxy":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # ------------------------------------------------------------- planning

    @property
    def plan(self) -> FaultPlan:
        return self._plan

    def set_plan(self, plan: FaultPlan) -> None:
        """Swap the fault plan; a killing plan aborts live connections.

        The PRNG is re-seeded from the new plan, so replaying a schedule
        reproduces the same fault sequence.
        """
        self._plan = plan
        self._rng = random.Random(plan.seed)
        if plan.reject_connections:
            self._abort_live_connections()

    def _abort_live_connections(self) -> None:
        for writer in list(self._writers):
            try:
                writer.transport.abort()
            except Exception:  # pragma: no cover - transport already dead
                pass
        self._writers.clear()

    # ----------------------------------------------------------- connections

    def _track(self, coro) -> asyncio.Task:
        """Spawn a pump task whose exception is always retrieved."""
        task = asyncio.ensure_future(coro)
        self._tasks.add(task)
        task.add_done_callback(self._reap)
        return task

    def _reap(self, task: asyncio.Task) -> None:
        self._tasks.discard(task)
        if not task.cancelled():
            task.exception()  # retrieve it so asyncio never warns

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        if self._plan.reject_connections:
            self.rejected += 1
            writer.transport.abort()
            return
        if self._plan.drop_syn:
            # Connect-phase swallow: the handshake already completed in the
            # kernel, so the closest userspace realization of a dropped SYN
            # is total silence — drain whatever the client sends, bridge
            # nothing, answer nothing.  Only the client's timeout (or a
            # plan change aborting us) ends the session.
            self.syn_dropped += 1
            self._writers.add(writer)
            try:
                while await reader.read(CHUNK):
                    pass
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass
            finally:
                self._writers.discard(writer)
                try:
                    writer.transport.abort()
                except Exception:  # pragma: no cover - transport already dead
                    pass
            return
        if self._plan.connect_delay > 0:
            # Slow accept: hold the accepted connection before bridging.
            # Register the writer first so close()/set_plan can abort the
            # wait; bail quietly if the client gave up meanwhile.
            self.slow_accepts += 1
            self._writers.add(writer)
            await asyncio.sleep(self._plan.connect_delay)
            self._writers.discard(writer)
            if writer.transport.is_closing():
                return
        try:
            up_reader, up_writer = await asyncio.open_connection(
                self.upstream_host, self.upstream_port
            )
        except (ConnectionError, OSError):
            writer.transport.abort()
            return
        self.connections += 1
        self._writers.add(writer)
        self._writers.add(up_writer)
        request = self._track(self._pump_requests(reader, up_writer))
        response = self._track(
            self._pump_responses(up_reader, writer, up_writer)
        )
        await asyncio.gather(request, response, return_exceptions=True)
        self._writers.discard(writer)
        self._writers.discard(up_writer)
        for w in (writer, up_writer):
            try:
                w.transport.abort()
            except Exception:  # pragma: no cover
                pass

    async def _pump_requests(
        self, reader: asyncio.StreamReader, up_writer: asyncio.StreamWriter
    ) -> None:
        """Client -> upstream: mostly pass-through (the response direction
        is where protocol state lives); a blackhole or a mid-session
        ``drop_syn`` still swallows requests, and a lossy-request plan
        drops individual chunks on this side."""
        try:
            while True:
                chunk = await reader.read(CHUNK)
                if not chunk:
                    break
                plan = self._plan
                if plan.blackhole or plan.drop_syn:
                    self.blackholed += 1
                    continue
                if (
                    plan.drop_request_probability > 0
                    and self._rng.random() < plan.drop_request_probability
                ):
                    self.dropped_requests += 1
                    continue
                up_writer.write(chunk)
                await up_writer.drain()
        except (ConnectionError, OSError, asyncio.CancelledError):
            pass
        finally:
            try:
                up_writer.transport.abort()
            except Exception:  # pragma: no cover
                pass

    async def _pump_responses(
        self,
        up_reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        up_writer: asyncio.StreamWriter,
    ) -> None:
        """Upstream -> client, with the plan's faults applied per chunk."""
        try:
            while True:
                chunk = await up_reader.read(CHUNK)
                if not chunk:
                    break
                plan = self._plan
                if plan.blackhole or plan.drop_syn:
                    self.blackholed += 1
                    continue
                if plan.delay > 0 or plan.delay_jitter > 0:
                    extra = plan.delay
                    if plan.delay_jitter > 0:
                        extra += self._rng.uniform(0, plan.delay_jitter)
                    self.delayed += 1
                    await asyncio.sleep(extra)
                if (
                    plan.reset_probability > 0
                    and self._rng.random() < plan.reset_probability
                ):
                    self.resets += 1
                    writer.transport.abort()
                    up_writer.transport.abort()
                    return
                if (
                    plan.partial_write_probability > 0
                    and self._rng.random() < plan.partial_write_probability
                ):
                    self.partial_writes += 1
                    writer.write(chunk[: max(1, len(chunk) // 2)])
                    try:
                        await writer.drain()
                    except (ConnectionError, OSError):
                        pass
                    writer.transport.abort()
                    up_writer.transport.abort()
                    return
                writer.write(chunk)
                await writer.drain()
        except (ConnectionError, OSError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.transport.abort()
            except Exception:  # pragma: no cover
                pass
