"""Closed-loop synthetic users — the paper's RBE workload (Section V-A1).

Each simulated user has an independent, randomly selected personal page set
(50 pages in the paper's Fig. 9 runs), a 0.5 s think time, and an
exponentially distributed session duration.  A user issues a request, waits
for the response, thinks, and repeats until the session ends.  The number of
concurrently active users follows a target curve derived from the trace
envelope — that is exactly how the paper drives its synthetic workload
("the total number of active users is dynamic and based on wikipedia
trace").

Closed-loop matters: when the database tier backs up during a bad
transition, closed-loop users slow down with it, which shapes the Fig. 9
spike; an open-loop generator would overstate the blowup.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.workload.zipf import ZipfSampler

#: Paper defaults (Section V-A1 / VI-C).
DEFAULT_THINK_TIME = 0.5
DEFAULT_PAGES_PER_USER = 50


class SyntheticUser:
    """One RBE user: a personal page set and a think-time loop."""

    __slots__ = ("user_id", "pages", "think_time", "_rng", "requests_issued")

    def __init__(
        self,
        user_id: int,
        pages: Sequence[str],
        think_time: float = DEFAULT_THINK_TIME,
        seed: int = 0,
    ) -> None:
        if not pages:
            raise ConfigurationError("a user needs at least one page")
        if think_time < 0:
            raise ConfigurationError(f"think_time must be >= 0, got {think_time}")
        self.user_id = user_id
        self.pages = list(pages)
        self.think_time = think_time
        self._rng = random.Random((seed << 20) ^ user_id)
        self.requests_issued = 0

    def next_key(self) -> str:
        """The page this user requests next (uniform over the personal set)."""
        self.requests_issued += 1
        return self._rng.choice(self.pages)

    def next_think(self) -> float:
        """Seconds the user thinks before the next request."""
        return self.think_time


class UserPopulation:
    """Spawns users whose page sets are drawn from the global popularity.

    Args:
        catalogue_size: distinct pages in the system.
        pages_per_user: personal page-set size (paper: 50).
        think_time: per-user think time (paper: 0.5 s).
        alpha: Zipf exponent used to bias personal sets toward popular pages.
        seed: master seed.
        key_prefix: page keys are ``{prefix}:{page_id}``.
    """

    def __init__(
        self,
        catalogue_size: int,
        pages_per_user: int = DEFAULT_PAGES_PER_USER,
        think_time: float = DEFAULT_THINK_TIME,
        alpha: float = 0.9,
        seed: int = 0,
        key_prefix: str = "page",
    ) -> None:
        if catalogue_size < 1:
            raise ConfigurationError(
                f"catalogue_size must be >= 1, got {catalogue_size}"
            )
        if pages_per_user < 1:
            raise ConfigurationError(
                f"pages_per_user must be >= 1, got {pages_per_user}"
            )
        self.catalogue_size = catalogue_size
        self.pages_per_user = pages_per_user
        self.think_time = think_time
        self.key_prefix = key_prefix
        self.seed = seed
        self._sampler = ZipfSampler(catalogue_size, alpha=alpha, seed=seed)
        self._next_user_id = 0
        self.active: List[SyntheticUser] = []

    def _draw_pages(self) -> List[str]:
        page_ids = self._sampler.sample_many(self.pages_per_user)
        return [f"{self.key_prefix}:{int(p)}" for p in page_ids]

    def spawn(self) -> SyntheticUser:
        """Create and register one new active user."""
        user = SyntheticUser(
            user_id=self._next_user_id,
            pages=self._draw_pages(),
            think_time=self.think_time,
            seed=self.seed,
        )
        self._next_user_id += 1
        self.active.append(user)
        return user

    def retire(self) -> Optional[SyntheticUser]:
        """Remove and return the oldest active user (session end)."""
        if not self.active:
            return None
        return self.active.pop(0)

    def resize_to(self, target: int) -> "PopulationDelta":
        """Spawn/retire users until exactly *target* are active.

        Returns the delta so the driver can schedule first requests for the
        newcomers and stop the leavers' loops.
        """
        if target < 0:
            raise ConfigurationError(f"target must be >= 0, got {target}")
        spawned: List[SyntheticUser] = []
        retired: List[SyntheticUser] = []
        while len(self.active) < target:
            spawned.append(self.spawn())
        while len(self.active) > target:
            leaver = self.retire()
            assert leaver is not None
            retired.append(leaver)
        return PopulationDelta(spawned=spawned, retired=retired)

    def __len__(self) -> int:
        return len(self.active)


class PopulationDelta:
    """Users added/removed by one :meth:`UserPopulation.resize_to` call."""

    __slots__ = ("spawned", "retired")

    def __init__(
        self, spawned: List[SyntheticUser], retired: List[SyntheticUser]
    ) -> None:
        self.spawned = spawned
        self.retired = retired
