"""Zipf-distributed key popularity.

Wikipedia page popularity is famously Zipf-like (Urdaneta et al., the
paper's trace source, measure an exponent near 1).  The sampler precomputes
the normalized CDF once with numpy and answers samples by binary search, so
drawing millions of keys stays cheap; ranks are shuffled into key ids by a
seeded permutation so that "popular" keys are spread across the hash space
(otherwise every scenario would hammer one ring segment by construction).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.errors import ConfigurationError


class ZipfSampler:
    """Draws item indexes ``0..num_items-1`` with Zipf(alpha) popularity.

    Args:
        num_items: catalogue size (distinct pages).
        alpha: Zipf exponent; 0 degenerates to uniform.
        seed: RNG seed (numpy ``default_rng``).
        shuffle: permute rank -> item id, so popularity is not correlated
            with item id order.
    """

    def __init__(
        self,
        num_items: int,
        alpha: float = 0.9,
        seed: int = 0,
        shuffle: bool = True,
    ) -> None:
        if num_items < 1:
            raise ConfigurationError(f"num_items must be >= 1, got {num_items}")
        if alpha < 0:
            raise ConfigurationError(f"alpha must be >= 0, got {alpha}")
        self.num_items = num_items
        self.alpha = alpha
        self._rng = np.random.default_rng(seed)
        weights = np.arange(1, num_items + 1, dtype=np.float64) ** -alpha
        self._cdf = np.cumsum(weights)
        self._cdf /= self._cdf[-1]
        if shuffle:
            self._perm = self._rng.permutation(num_items)
        else:
            self._perm = np.arange(num_items)

    def sample(self) -> int:
        """Draw one item index."""
        return int(self._perm[np.searchsorted(self._cdf, self._rng.random())])

    def sample_many(self, count: int) -> np.ndarray:
        """Draw *count* item indexes (vectorized)."""
        if count < 0:
            raise ConfigurationError(f"count must be >= 0, got {count}")
        ranks = np.searchsorted(self._cdf, self._rng.random(count))
        return self._perm[ranks]

    def popularity(self, rank: int) -> float:
        """Probability mass of the item at *rank* (0 = most popular)."""
        if not 0 <= rank < self.num_items:
            raise ConfigurationError(f"rank out of range: {rank}")
        previous = self._cdf[rank - 1] if rank > 0 else 0.0
        return float(self._cdf[rank] - previous)

    def top_items(self, count: int) -> List[int]:
        """Item ids of the *count* most popular ranks."""
        return [int(self._perm[r]) for r in range(min(count, self.num_items))]
