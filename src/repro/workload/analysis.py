"""Trace analysis — fitting the knobs of the synthetic generator to a trace.

When a real trace (e.g. the converted WikiBench trace) is available, these
tools extract the parameters the experiments care about, so the synthetic
generator can be calibrated to it — or the real trace characterized before
replay:

* :func:`fit_zipf_alpha` — the popularity skew exponent;
* :func:`working_set_sizes` — distinct keys touched per window (sizes the
  Fig. 6 cache sweep);
* :func:`interarrival_stats` — burstiness of request arrivals;
* :func:`rate_envelope` — the smoothed requests/s curve (drives the
  provisioning loop);
* :func:`summarize` — everything at once.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.workload.trace import TraceRecord


def fit_zipf_alpha(
    records: Sequence[TraceRecord], max_rank: int = 1000
) -> float:
    """Least-squares Zipf exponent from the rank-frequency log-log line.

    Fits ``log(freq) = -alpha * log(rank) + c`` over the top *max_rank*
    keys (the head is where Zipf behaviour is cleanest; the tail is
    sampling noise).
    """
    if not records:
        raise ConfigurationError("empty trace")
    counts = Counter(record.key for record in records)
    frequencies = sorted(counts.values(), reverse=True)[:max_rank]
    if len(frequencies) < 3:
        raise ConfigurationError(
            "need at least 3 distinct keys to fit a Zipf exponent"
        )
    ranks = np.arange(1, len(frequencies) + 1, dtype=np.float64)
    log_rank = np.log(ranks)
    log_freq = np.log(np.asarray(frequencies, dtype=np.float64))
    slope, _intercept = np.polyfit(log_rank, log_freq, 1)
    return float(-slope)


def working_set_sizes(
    records: Sequence[TraceRecord], window_seconds: float
) -> List[int]:
    """Distinct keys touched in each consecutive window."""
    if window_seconds <= 0:
        raise ConfigurationError(
            f"window_seconds must be > 0, got {window_seconds}"
        )
    if not records:
        return []
    windows: Dict[int, set] = {}
    for record in records:
        windows.setdefault(int(record.time // window_seconds), set()).add(
            record.key
        )
    last = max(windows)
    return [len(windows.get(i, ())) for i in range(last + 1)]


@dataclass(frozen=True)
class InterarrivalStats:
    """Burstiness summary of the arrival process."""

    mean: float
    cv: float  # coefficient of variation; 1.0 for Poisson

    @property
    def is_bursty(self) -> bool:
        """CV well above 1 indicates burstier-than-Poisson arrivals."""
        return self.cv > 1.3


def interarrival_stats(records: Sequence[TraceRecord]) -> InterarrivalStats:
    """Mean and CV of interarrival times."""
    if len(records) < 2:
        raise ConfigurationError("need at least 2 records")
    times = np.asarray([record.time for record in records])
    gaps = np.diff(times)
    if np.any(gaps < 0):
        raise ConfigurationError("trace is not time-sorted")
    mean = float(gaps.mean())
    if mean == 0:
        return InterarrivalStats(mean=0.0, cv=0.0)
    return InterarrivalStats(mean=mean, cv=float(gaps.std() / mean))


def rate_envelope(
    records: Sequence[TraceRecord], window_seconds: float
) -> List[float]:
    """Requests per second in each consecutive window."""
    if window_seconds <= 0:
        raise ConfigurationError(
            f"window_seconds must be > 0, got {window_seconds}"
        )
    if not records:
        return []
    counts: Dict[int, int] = {}
    for record in records:
        slot = int(record.time // window_seconds)
        counts[slot] = counts.get(slot, 0) + 1
    last = max(counts)
    return [counts.get(i, 0) / window_seconds for i in range(last + 1)]


@dataclass(frozen=True)
class TraceSummary:
    """Everything the generator needs to imitate a trace."""

    requests: int
    duration: float
    distinct_keys: int
    mean_rate: float
    peak_to_valley: float
    zipf_alpha: float
    interarrival_cv: float


def summarize(
    records: Sequence[TraceRecord], window_seconds: float = 60.0
) -> TraceSummary:
    """One-call characterization of a trace."""
    if len(records) < 2:
        raise ConfigurationError("need at least 2 records")
    duration = records[-1].time - records[0].time
    envelope = [r for r in rate_envelope(records, window_seconds) if r > 0]
    peak_to_valley = (
        max(envelope) / min(envelope) if envelope else float("nan")
    )
    return TraceSummary(
        requests=len(records),
        duration=duration,
        distinct_keys=len({record.key for record in records}),
        mean_rate=len(records) / duration if duration > 0 else math.inf,
        peak_to_valley=peak_to_valley,
        zipf_alpha=fit_zipf_alpha(records),
        interarrival_cv=interarrival_stats(records).cv,
    )
