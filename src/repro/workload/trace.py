"""Request traces: the record type, file I/O, and slotting utilities.

The Wikipedia trace the paper replays "logs the time and requested URL of
every single access".  Our canonical in-memory form is a time-sorted list of
:class:`TraceRecord`; on disk it is a plain CSV (optionally gzipped) with
``timestamp,key`` rows, so real traces can be converted in with a one-liner
and everything downstream (load-balancing evaluation, provisioning, hit-rate
sweeps) is trace-format agnostic.
"""

from __future__ import annotations

import gzip
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, List, Sequence, Union

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class TraceRecord:
    """One logged request: arrival time (seconds) and data key."""

    time: float
    key: str


def _open_maybe_gzip(path: Path, mode: str):
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def save_trace(records: Iterable[TraceRecord], path: Union[str, Path]) -> int:
    """Write records as ``timestamp,key`` CSV; returns the row count.

    Keys containing commas or newlines are rejected (keep keys URL-safe, as
    Wikipedia page titles in trace URLs are).
    """
    target = Path(path)
    count = 0
    with _open_maybe_gzip(target, "w") as fh:
        for record in records:
            if "," in record.key or "\n" in record.key:
                raise ConfigurationError(
                    f"trace keys must not contain commas/newlines: {record.key!r}"
                )
            fh.write(f"{record.time:.6f},{record.key}\n")
            count += 1
    return count


def load_trace(path: Union[str, Path]) -> List[TraceRecord]:
    """Read a trace written by :func:`save_trace` (sorted check enforced)."""
    source = Path(path)
    records: List[TraceRecord] = []
    with _open_maybe_gzip(source, "r") as fh:
        for line_no, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                time_text, key = line.split(",", 1)
                when = float(time_text)
            except ValueError as exc:
                raise ConfigurationError(
                    f"{source}:{line_no}: malformed trace line {line!r}"
                ) from exc
            records.append(TraceRecord(when, key))
    for i in range(1, len(records)):
        if records[i].time < records[i - 1].time:
            raise ConfigurationError(
                f"{source}: trace not time-sorted at row {i + 1}"
            )
    return records


def iter_trace(path: Union[str, Path]) -> Iterator[TraceRecord]:
    """Stream a trace file without materializing it."""
    source = Path(path)
    with _open_maybe_gzip(source, "r") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            time_text, key = line.split(",", 1)
            yield TraceRecord(float(time_text), key)


def slot_counts(
    records: Sequence[TraceRecord], slot_seconds: float, num_slots: int
) -> List[int]:
    """Requests per slot — the paper's "count the number of requests inside
    every 1-hour time window" preprocessing for Fig. 4.

    Records outside ``[0, num_slots * slot_seconds)`` are ignored.
    """
    if slot_seconds <= 0:
        raise ConfigurationError(f"slot_seconds must be > 0, got {slot_seconds}")
    if num_slots < 1:
        raise ConfigurationError(f"num_slots must be >= 1, got {num_slots}")
    counts = [0] * num_slots
    for record in records:
        slot = int(record.time // slot_seconds)
        if 0 <= slot < num_slots:
            counts[slot] += 1
    return counts


def peak_to_valley(counts: Sequence[int]) -> float:
    """Peak/valley ratio of per-slot counts (paper: peak can be ~2x valley)."""
    nonzero = [c for c in counts if c > 0]
    if not nonzero:
        raise ConfigurationError("trace has no requests in any slot")
    return max(nonzero) / min(nonzero)
