"""WikiBench trace conversion — plugging in the paper's real trace.

The paper replays the Wikipedia access trace of Urdaneta et al. (its
reference [30]), distributed in the WikiBench format: one line per request,

    <counter> <unix-timestamp.fraction> <url> <save-flag>

e.g. ``4350779 1194892621.567 http://en.wikipedia.org/wiki/Portal:Arts -``.

The paper "first do[es] some preliminaries to distill the requests that hit
English Wikipedia"; this module is that preliminary step: it filters to
English-Wikipedia *article* requests (dropping images, thumbnails, API and
search hits — the paper notes the image content was unavailable to them
too), percent-decodes the title into a cache key ``page:<Title>``, and
rebases timestamps to start at zero.  The output is the package's canonical
:class:`~repro.workload.trace.TraceRecord` list, so every harness that runs
on synthetic traces runs on the real one unchanged.
"""

from __future__ import annotations

import urllib.parse
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional

from repro.errors import ConfigurationError
from repro.workload.trace import TraceRecord

#: URL prefix the paper's evaluation keeps.
ARTICLE_PREFIX = "http://en.wikipedia.org/wiki/"

#: Title namespaces that are not article pages (served differently, or not
#: cacheable page text): skipped like the unavailable image content.
_SKIP_NAMESPACES = (
    "Special:", "Image:", "File:", "Media:", "User:", "User_talk:",
    "Talk:", "Wikipedia:", "Wikipedia_talk:", "Template:", "Help:",
    "Category:", "MediaWiki:",
)


@dataclass
class ConversionStats:
    """What the preliminary filtering kept and dropped."""

    total_lines: int = 0
    malformed: int = 0
    non_english: int = 0
    non_article: int = 0
    kept: int = 0

    @property
    def keep_ratio(self) -> float:
        return self.kept / self.total_lines if self.total_lines else 0.0


def parse_line(line: str) -> Optional[tuple]:
    """Parse one WikiBench line into ``(timestamp, url)``; None if malformed."""
    parts = line.split(" ")
    if len(parts) < 3:
        return None
    try:
        timestamp = float(parts[1])
    except ValueError:
        return None
    return timestamp, parts[2]


def title_from_url(url: str) -> Optional[str]:
    """The article title behind *url*, or ``None`` if it is not an
    English-Wikipedia article request."""
    if not url.startswith(ARTICLE_PREFIX):
        return None
    raw_title = url[len(ARTICLE_PREFIX):]
    if not raw_title or "?" in raw_title:
        return None  # index.php-style queries come with parameters
    title = urllib.parse.unquote(raw_title)
    if any(title.startswith(ns) for ns in _SKIP_NAMESPACES):
        return None
    return title


def convert_lines(
    lines: Iterable[str],
    key_prefix: str = "page",
    stats: Optional[ConversionStats] = None,
) -> Iterator[TraceRecord]:
    """Stream WikiBench *lines* into trace records (timestamps rebased to 0).

    Records are yielded in input order; WikiBench traces are time-sorted.
    """
    base: Optional[float] = None
    for line in lines:
        line = line.strip()
        if stats is not None:
            stats.total_lines += 1
        if not line:
            if stats is not None:
                stats.malformed += 1
            continue
        parsed = parse_line(line)
        if parsed is None:
            if stats is not None:
                stats.malformed += 1
            continue
        timestamp, url = parsed
        if not url.startswith(ARTICLE_PREFIX):
            if stats is not None:
                stats.non_english += 1
            continue
        title = title_from_url(url)
        if title is None:
            if stats is not None:
                stats.non_article += 1
            continue
        if base is None:
            base = timestamp
        if stats is not None:
            stats.kept += 1
        # Commas would break the CSV trace format; encode them back.
        safe_title = title.replace(",", "%2C").replace(" ", "_")
        yield TraceRecord(timestamp - base, f"{key_prefix}:{safe_title}")


def convert_file(
    path, key_prefix: str = "page"
) -> tuple:
    """Convert a WikiBench file; returns ``(records, stats)``.

    Accepts plain or ``.gz`` files.
    """
    import gzip
    from pathlib import Path

    source = Path(path)
    stats = ConversionStats()
    opener = gzip.open if source.suffix == ".gz" else open
    with opener(source, "rt", encoding="utf-8", errors="replace") as fh:
        records: List[TraceRecord] = list(
            convert_lines(fh, key_prefix=key_prefix, stats=stats)
        )
    for i in range(1, len(records)):
        if records[i].time < records[i - 1].time:
            raise ConfigurationError(
                f"{source}: trace not time-sorted at record {i + 1}"
            )
    return records, stats
