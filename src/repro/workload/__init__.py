"""Workload synthesis: Zipf popularity, diurnal traces, closed-loop users."""

from repro.workload.analysis import (
    InterarrivalStats,
    TraceSummary,
    fit_zipf_alpha,
    interarrival_stats,
    rate_envelope,
    summarize,
    working_set_sizes,
)
from repro.workload.synthetic import (
    DEFAULT_PAGES_PER_USER,
    DEFAULT_THINK_TIME,
    PopulationDelta,
    SyntheticUser,
    UserPopulation,
)
from repro.workload.trace import (
    TraceRecord,
    iter_trace,
    load_trace,
    peak_to_valley,
    save_trace,
    slot_counts,
)
from repro.workload.wikibench import ConversionStats, convert_file, convert_lines
from repro.workload.wikipedia import diurnal_rate, generate_arrivals, generate_trace
from repro.workload.zipf import ZipfSampler

__all__ = [
    "DEFAULT_PAGES_PER_USER",
    "DEFAULT_THINK_TIME",
    "PopulationDelta",
    "SyntheticUser",
    "ConversionStats",
    "InterarrivalStats",
    "TraceRecord",
    "TraceSummary",
    "fit_zipf_alpha",
    "interarrival_stats",
    "rate_envelope",
    "summarize",
    "working_set_sizes",
    "UserPopulation",
    "convert_file",
    "convert_lines",
    "ZipfSampler",
    "diurnal_rate",
    "generate_arrivals",
    "generate_trace",
    "iter_trace",
    "load_trace",
    "peak_to_valley",
    "save_trace",
    "slot_counts",
]
