"""The sharded database tier (paper Section V-A4: 7 MySQL shards).

Keys are hash-partitioned across shards ("7 non-overlapping shards on 7
different servers"); the web server computes the shard deterministically, so
no metadata lookup is needed — matching the paper's observation that
meta-server indirection is too slow for the cache tier's request rates.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.bloom.hashing import stable_hash64
from repro.database.shard import DatabaseShard, ShardResponse
from repro.errors import ConfigurationError
from repro.sim.latency import LatencyModel

#: The paper's database tier size.
DEFAULT_NUM_SHARDS = 7

#: Hash salt reserved for shard selection (distinct from ring/bloom salts).
_SHARD_SALT = 0x0DB


class DatabaseCluster:
    """A fixed set of :class:`DatabaseShard` with deterministic routing."""

    def __init__(
        self,
        num_shards: int = DEFAULT_NUM_SHARDS,
        service_model: Optional[LatencyModel] = None,
        synthesize: bool = True,
        seed: int = 0,
    ) -> None:
        if num_shards < 1:
            raise ConfigurationError(f"num_shards must be >= 1, got {num_shards}")
        self.shards: List[DatabaseShard] = [
            DatabaseShard(
                shard_id=i,
                service_model=service_model,
                synthesize=synthesize,
                seed=seed,
            )
            for i in range(num_shards)
        ]

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    def shard_for(self, key: str) -> DatabaseShard:
        """The shard authoritative for *key*."""
        return self.shards[stable_hash64(key, salt=_SHARD_SALT) % len(self.shards)]

    def get(self, key: str, now: float) -> ShardResponse:
        """Read *key* through its shard's queue."""
        return self.shard_for(key).get(key, now)

    def put(self, key: str, value: Any) -> None:
        """Install authoritative data on the owning shard."""
        self.shard_for(key).put(key, value)

    def load_dataset(self, dataset: Dict[str, Any]) -> None:
        """Partition *dataset* across the shards."""
        for key, value in dataset.items():
            self.put(key, value)

    def total_requests(self) -> int:
        """Requests served across all shards — the DB pressure metric.

        A provisioning transition under the Naive scheme shows up as a step
        in this counter; under Proteus it barely moves (Algorithm 2 keeps
        misses in the cache tier).
        """
        return sum(shard.requests for shard in self.shards)

    def max_queue_delay(self, now: float) -> float:
        """Worst backlog across shards (the Fig. 9 spike driver)."""
        return max(shard.queue_delay(now) for shard in self.shards)

    def reset(self) -> None:
        """Reset all shard queues and counters."""
        for shard in self.shards:
            shard.reset()
