"""One database shard — a slice of the backing store with a service queue.

Models a MySQL server holding one horizontal slice of the Wikipedia dump
(Section V-A4).  The paper's per-request work is three dependent lookups
(``page -> page_latest -> rev_text_id -> old_text``); we fold that into the
shard's service-time distribution rather than simulating InnoDB.  The shard
is a single-server FIFO queue, so a burst of cache misses piles up queueing
delay — the mechanism behind the Fig. 9 Naive spike.

The shard *always* has the data (the database tier is authoritative): values
are synthesized deterministically from the key unless an explicit dataset is
installed, which stands in for the 70 GB dump without storing it.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Optional

from repro.errors import ConfigurationError
from repro.sim.latency import Exponential, LatencyModel, ServiceQueue

#: Default mean DB service time.  A 3-lookup InnoDB read with warm buffer
#: pool is a few ms; with cold pages and text retrieval the paper's tier
#: answers in tens of ms.  50 ms keeps the cache-vs-DB gap (~50x) realistic.
DEFAULT_DB_SERVICE_MEAN = 0.050


def synthesize_page(key: str, size: int = 4096) -> bytes:
    """Deterministic stand-in for a Wikipedia article body."""
    seed = f"enwiki:{key}".encode("utf-8")
    block = (seed + b"\x00") * (size // (len(seed) + 1) + 1)
    return block[:size]


class DatabaseShard:
    """One shard: authoritative data + FIFO service queue.

    Args:
        shard_id: index within the cluster.
        service_model: per-request service-time distribution.
        dataset: explicit ``key -> value`` data; keys outside it fall back to
            the synthesizer (or miss if ``synthesize=False``).
        synthesize: answer any key with a generated page (simulates the full
            dump being present).
        seed: RNG seed for service-time sampling.
    """

    def __init__(
        self,
        shard_id: int,
        service_model: Optional[LatencyModel] = None,
        dataset: Optional[Dict[str, Any]] = None,
        synthesize: bool = True,
        seed: int = 0,
    ) -> None:
        if shard_id < 0:
            raise ConfigurationError(f"shard_id must be >= 0, got {shard_id}")
        self.shard_id = shard_id
        self.service_model = service_model or Exponential(DEFAULT_DB_SERVICE_MEAN)
        self.dataset = dict(dataset or {})
        self.synthesize = synthesize
        self.queue = ServiceQueue()
        self._rng = random.Random((seed << 8) ^ shard_id)
        #: total requests answered
        self.requests = 0
        #: requests that missed (only possible with synthesize=False)
        self.not_found = 0

    def lookup(self, key: str) -> Optional[Any]:
        """The value for *key* (no timing): dataset, then synthesizer."""
        if key in self.dataset:
            return self.dataset[key]
        if self.synthesize:
            return synthesize_page(key)
        return None

    def get(self, key: str, now: float) -> "ShardResponse":
        """Serve *key* through the FIFO queue; returns value + completion time."""
        service = self.service_model.sample(self._rng)
        completion = self.queue.enqueue(now, service)
        value = self.lookup(key)
        self.requests += 1
        if value is None:
            self.not_found += 1
        return ShardResponse(value=value, completion_time=completion,
                             service_time=service,
                             queue_delay=completion - now - service)

    def put(self, key: str, value: Any) -> None:
        """Install authoritative data (tests / dataset loading)."""
        self.dataset[key] = value

    def queue_delay(self, now: float) -> float:
        """Backlog a request arriving at *now* would wait behind."""
        return self.queue.delay(now)

    def reset(self) -> None:
        """Clear queue state and counters (dataset is kept)."""
        self.queue.reset()
        self.requests = 0
        self.not_found = 0


class ShardResponse:
    """Outcome of one shard read."""

    __slots__ = ("value", "completion_time", "service_time", "queue_delay")

    def __init__(
        self, value: Any, completion_time: float, service_time: float,
        queue_delay: float,
    ) -> None:
        self.value = value
        self.completion_time = completion_time
        self.service_time = service_time
        self.queue_delay = queue_delay

    @property
    def found(self) -> bool:
        return self.value is not None
