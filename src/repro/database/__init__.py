"""Sharded database tier (the authoritative store behind the caches)."""

from repro.database.cluster import DEFAULT_NUM_SHARDS, DatabaseCluster
from repro.database.shard import (
    DEFAULT_DB_SERVICE_MEAN,
    DatabaseShard,
    ShardResponse,
    synthesize_page,
)

__all__ = [
    "DatabaseCluster",
    "DatabaseShard",
    "DEFAULT_DB_SERVICE_MEAN",
    "DEFAULT_NUM_SHARDS",
    "ShardResponse",
    "synthesize_page",
]
