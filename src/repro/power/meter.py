"""PDU-style power sampling and energy integration.

The paper samples every socket every 15 seconds (Section VI-D) and reports
power-over-time (Fig. 10) and total energy (Fig. 11) for the entire cluster
and for the cache tier alone.  :class:`PowerMeter` does the same: callers
register named *channels* (one per server, tagged with a tier) that report
``(powered_on, utilization)`` when sampled; the meter turns that into watts
via each channel's :class:`ServerPowerModel`, keeps per-tier time series,
and integrates energy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.power.model import ServerPowerModel
from repro.sim.metrics import TimeSeries

#: The paper's PDU sampling period.
DEFAULT_SAMPLE_PERIOD = 15.0

#: ``(powered_on, utilization)`` at sampling time.
ChannelProbe = Callable[[float], Tuple[bool, float]]


@dataclass
class Channel:
    """One metered socket: a server's probe + power model + tier tag."""

    name: str
    tier: str
    probe: ChannelProbe
    model: ServerPowerModel


class PowerMeter:
    """Samples registered channels and accumulates per-tier energy.

    Args:
        sample_period: seconds between samples (paper: 15 s).
    """

    def __init__(self, sample_period: float = DEFAULT_SAMPLE_PERIOD) -> None:
        if sample_period <= 0:
            raise ConfigurationError(
                f"sample_period must be > 0, got {sample_period}"
            )
        self.sample_period = sample_period
        self.channels: List[Channel] = []
        #: per-tier power time series (watts at each sample time)
        self.tier_series: Dict[str, TimeSeries] = {}
        #: whole-cluster power series
        self.total_series = TimeSeries()
        self._last_sample: Optional[float] = None

    def add_channel(
        self,
        name: str,
        tier: str,
        probe: ChannelProbe,
        model: Optional[ServerPowerModel] = None,
    ) -> None:
        """Register one socket."""
        self.channels.append(
            Channel(name=name, tier=tier, probe=probe, model=model or ServerPowerModel())
        )
        self.tier_series.setdefault(tier, TimeSeries())

    def sample(self, now: float) -> float:
        """Take one sample of every channel; returns total watts."""
        per_tier: Dict[str, float] = {tier: 0.0 for tier in self.tier_series}
        for channel in self.channels:
            powered_on, utilization = channel.probe(now)
            watts = channel.model.power(powered_on, utilization)
            per_tier[channel.tier] = per_tier.get(channel.tier, 0.0) + watts
        total = sum(per_tier.values())
        for tier, watts in per_tier.items():
            self.tier_series[tier].append(now, watts)
        self.total_series.append(now, total)
        self._last_sample = now
        return total

    def next_sample_due(self, now: float) -> float:
        """Timestamp of the next scheduled sample."""
        if self._last_sample is None:
            return now
        return self._last_sample + self.sample_period

    def energy_joules(self, tier: Optional[str] = None) -> float:
        """Trapezoidal energy integral over all samples so far.

        Args:
            tier: restrict to one tier; ``None`` for the whole cluster
                (the two bars of Fig. 11).
        """
        series = self.total_series if tier is None else self.tier_series[tier]
        return series.integrate()

    def energy_kwh(self, tier: Optional[str] = None) -> float:
        """Energy in kWh (the Fig. 11 unit)."""
        return self.energy_joules(tier) / 3.6e6

    def tiers(self) -> List[str]:
        """Registered tier names."""
        return sorted(self.tier_series)


def busy_time_probe(
    busy_time: Callable[[], float], powered: Callable[[], bool]
) -> ChannelProbe:
    """Probe for components with exact busy-time accounting (DB shards).

    Utilization over the sampling window is the busy-seconds delta divided
    by elapsed time — exact for a :class:`~repro.sim.latency.ServiceQueue`.
    """
    state = {"last_busy": 0.0, "last_time": None}

    def probe(now: float) -> Tuple[bool, float]:
        busy = busy_time()
        last_time = state["last_time"]
        if last_time is None or now <= last_time:
            utilization = 0.0
        else:
            utilization = min(1.0, (busy - state["last_busy"]) / (now - last_time))
        state["last_busy"] = busy
        state["last_time"] = now
        return powered(), utilization

    return probe


def utilization_probe(
    requests_counter: Callable[[], int],
    powered: Callable[[], bool],
    op_cost: float,
) -> ChannelProbe:
    """Build a probe that estimates utilization from a request counter.

    Utilization since the previous sample is approximated as
    ``ops_since_last * op_cost / elapsed``, capped at 1.  The closure keeps
    the previous counter reading, so attach each probe to only one meter.
    """
    state = {"last_count": 0, "last_time": None}

    def probe(now: float) -> Tuple[bool, float]:
        count = requests_counter()
        last_time = state["last_time"]
        if last_time is None or now <= last_time:
            utilization = 0.0
        else:
            delta_ops = count - state["last_count"]
            elapsed = now - last_time
            utilization = min(1.0, delta_ops * op_cost / elapsed)
        state["last_count"] = count
        state["last_time"] = now
        return powered(), utilization

    return probe
