"""Power modelling and PDU-style metering (paper Section VI-D)."""

from repro.power.meter import (
    Channel,
    DEFAULT_SAMPLE_PERIOD,
    PowerMeter,
    utilization_probe,
)
from repro.power.model import (
    DEFAULT_P_IDLE,
    DEFAULT_P_OFF,
    DEFAULT_P_PEAK,
    ServerPowerModel,
)

__all__ = [
    "Channel",
    "DEFAULT_P_IDLE",
    "DEFAULT_P_OFF",
    "DEFAULT_P_PEAK",
    "DEFAULT_SAMPLE_PERIOD",
    "PowerMeter",
    "ServerPowerModel",
    "utilization_probe",
]
