"""Per-server power model.

The paper measures real per-socket power with an Avocent PM3000 PDU.  We use
the standard linear model: an OFF server draws a small standby wattage, an
ON server draws ``idle + (peak - idle) * utilization``.  Defaults are
calibrated to the paper's Fig. 10, where the full 30-machine service cluster
(10 web + 10 cache + 7 DB + switch overhead) draws ~2.8-3.4 kW: mid-range
1U servers (Dell R210 class) idle near 70 W and peak near 120 W.

Server *efficiency* (workload per watt) is exposed because Section III-A
recommends fixing the provisioning order by decreasing efficiency; the
ablation bench exercises heterogeneous fleets.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

#: Defaults for a Dell PowerEdge R210-class 1U server.
DEFAULT_P_OFF = 5.0
DEFAULT_P_IDLE = 70.0
DEFAULT_P_PEAK = 120.0


@dataclass(frozen=True)
class ServerPowerModel:
    """Linear utilization-to-watts model for one server.

    Attributes:
        p_off: watts drawn when powered off (standby / BMC).
        p_idle: watts at zero utilization.
        p_peak: watts at 100% utilization.
    """

    p_off: float = DEFAULT_P_OFF
    p_idle: float = DEFAULT_P_IDLE
    p_peak: float = DEFAULT_P_PEAK

    def __post_init__(self) -> None:
        if not 0 <= self.p_off <= self.p_idle <= self.p_peak:
            raise ConfigurationError(
                f"need 0 <= p_off <= p_idle <= p_peak, got "
                f"({self.p_off}, {self.p_idle}, {self.p_peak})"
            )

    def power(self, powered_on: bool, utilization: float = 0.0) -> float:
        """Watts drawn given the power state and utilization in [0, 1]."""
        if not powered_on:
            return self.p_off
        clamped = min(1.0, max(0.0, utilization))
        return self.p_idle + (self.p_peak - self.p_idle) * clamped

    def efficiency(self, throughput: float, utilization: float = 1.0) -> float:
        """Requests per joule at the given operating point (Section III-A)."""
        watts = self.power(True, utilization)
        if watts <= 0:
            raise ConfigurationError("power model yields non-positive watts")
        return throughput / watts

    def scaled(self, factor: float) -> "ServerPowerModel":
        """A copy with all wattages scaled (heterogeneous fleets)."""
        if factor <= 0:
            raise ConfigurationError(f"factor must be > 0, got {factor}")
        return ServerPowerModel(
            p_off=self.p_off * factor,
            p_idle=self.p_idle * factor,
            p_peak=self.p_peak * factor,
        )
