"""Fixing the provisioning order (paper Section III-A).

Proteus assumes a *fixed* order ``s_1 .. s_N`` in which servers power on
and off, and notes that a "well designed order further improves power
savings.  For example, the decreasing order of server efficiency should be
better than a random order, where server efficiency is defined as the
amount of workload served per unit of energy."  Choosing the order is the
operator's job; this module provides the tooling:

* :class:`ServerSpec` — a physical server's capacity and power model;
* :func:`efficiency_order` — the decreasing-efficiency order;
* :class:`OrderedFleet` — the logical (provisioning-index) to physical
  mapping plus fleet-level energy math, used by the provisioning-order
  ablation bench to quantify what ordering buys on heterogeneous fleets.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.power.model import ServerPowerModel
from repro.provisioning.policies import ProvisioningSchedule


@dataclass(frozen=True)
class ServerSpec:
    """One physical cache server's capabilities.

    Attributes:
        name: physical identifier (rack slot, hostname, ...).
        capacity: workload it can serve per second at rated load.
        power: its power model.
    """

    name: str
    capacity: float
    power: ServerPowerModel = ServerPowerModel()

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ConfigurationError(
                f"capacity must be > 0, got {self.capacity}"
            )

    @property
    def efficiency(self) -> float:
        """Section III-A: workload served per unit of energy (req/J at peak)."""
        return self.capacity / self.power.p_peak


def efficiency_order(specs: Sequence[ServerSpec]) -> List[int]:
    """Indices of *specs* in decreasing efficiency (ties: larger capacity
    first, then input order for determinism)."""
    if not specs:
        raise ConfigurationError("need at least one server spec")
    return sorted(
        range(len(specs)),
        key=lambda i: (-specs[i].efficiency, -specs[i].capacity, i),
    )


def random_order(num_servers: int, seed: int = 0) -> List[int]:
    """A seeded random order (the baseline Section III-A argues against)."""
    if num_servers < 1:
        raise ConfigurationError(f"num_servers must be >= 1, got {num_servers}")
    order = list(range(num_servers))
    random.Random(seed).shuffle(order)
    return order


class OrderedFleet:
    """Physical servers arranged in a fixed provisioning order.

    Logical server ``i`` (the router's id space) is ``specs[order[i]]``.
    """

    def __init__(self, specs: Sequence[ServerSpec], order: Optional[Sequence[int]] = None) -> None:
        if not specs:
            raise ConfigurationError("need at least one server spec")
        if order is None:
            order = efficiency_order(specs)
        if sorted(order) != list(range(len(specs))):
            raise ConfigurationError(
                f"order must be a permutation of 0..{len(specs) - 1}"
            )
        self.specs = list(specs)
        self.order = list(order)

    def __len__(self) -> int:
        return len(self.specs)

    def spec_of(self, logical_id: int) -> ServerSpec:
        """The physical spec behind logical provisioning index *logical_id*."""
        return self.specs[self.order[logical_id]]

    def active_capacity(self, num_active: int) -> float:
        """Total rated capacity of the first *num_active* servers."""
        return sum(self.spec_of(i).capacity for i in range(num_active))

    def servers_for_load(self, load: float) -> int:
        """Smallest active prefix whose capacity covers *load*.

        Raises:
            ConfigurationError: the whole fleet cannot cover *load*.
        """
        total = 0.0
        for n in range(1, len(self.specs) + 1):
            total += self.spec_of(n - 1).capacity
            if total >= load:
                return n
        raise ConfigurationError(
            f"fleet capacity {total} cannot cover load {load}"
        )

    def power_draw(self, num_active: int, load: float) -> float:
        """Fleet watts with *num_active* on, *load* spread by key-space share.

        Proteus balances *keys* (and hence requests) equally, so each active
        server sees ``load / num_active`` regardless of its capacity; a slow
        server simply runs at higher utilization.  OFF servers draw standby.
        """
        if not 1 <= num_active <= len(self.specs):
            raise ConfigurationError(
                f"num_active out of range: {num_active}"
            )
        per_server = load / num_active
        watts = 0.0
        for i in range(len(self.specs)):
            spec = self.spec_of(i)
            if i < num_active:
                watts += spec.power.power(True, per_server / spec.capacity)
            else:
                watts += spec.power.power(False)
        return watts

    def schedule_for(
        self,
        slot_loads: Sequence[float],
        slot_seconds: float,
        min_servers: int = 1,
    ) -> ProvisioningSchedule:
        """Capacity-aware sizing: per slot, the smallest prefix covering the
        load (heterogeneous generalization of load-proportional sizing)."""
        counts = [
            max(min_servers, self.servers_for_load(load))
            for load in slot_loads
        ]
        return ProvisioningSchedule(slot_seconds, counts)

    def energy_joules(
        self, schedule: ProvisioningSchedule, slot_loads: Sequence[float]
    ) -> float:
        """Fleet energy over *schedule* with per-slot loads (rectangle rule)."""
        if len(slot_loads) != schedule.num_slots:
            raise ConfigurationError(
                "slot_loads must match the schedule's slot count"
            )
        return sum(
            self.power_draw(n, load) * schedule.slot_seconds
            for n, load in zip(schedule.counts, slot_loads)
        )
