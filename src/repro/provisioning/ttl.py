"""Drain-window (TTL) sizing policies for smooth transitions.

The paper treats the transition TTL as a fixed constant (Section III
defines "hot" as touched within the last TTL seconds; Section IV powers a
draining server off once the window closes).  But the window's *job* is to
cover the remap-miss decay: right after routing flips, every remapped key's
first fetch pays a migration (old-owner pull or database read), and the
per-interval count of those events decays roughly geometrically as the
working set re-registers under the new mapping.  A constant window either
wastes energy (drains long after the decay has finished) or spills misses
to the database (closes before it has).

Carra et al., "Elastic Provisioning of Cloud Caches: a Cost-aware TTL
Approach" (PAPERS.md) make the same observation for cache item TTLs: size
the horizon from the observed miss-cost decay, not from a constant.
:class:`AdaptiveTTLPolicy` applies that idea to the drain window: it fits
an exponential to each transition's observed remap-miss series, keeps the
estimated half-lives of recent transitions, and sizes the next window to
``half_life * log2(1 / target_residual)`` — the time after which only a
``target_residual`` fraction of the initial remap-miss rate remains —
clamped to configurable bounds.  With no observations yet it returns the
configured default, so the policy is inert until it has evidence.

:class:`FixedTTLPolicy` is the paper's constant, wrapped in the same
interface, and :data:`TTL_POLICIES` registers both by name for config and
CLI surfaces.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Iterable, Optional, Sequence, Tuple

from repro.core.registry import Registry
from repro.core.transition import DEFAULT_TTL
from repro.errors import ConfigurationError

__all__ = [
    "AdaptiveTTLPolicy",
    "FixedTTLPolicy",
    "TTL_POLICIES",
    "estimate_half_life",
    "make_ttl_policy",
]


def estimate_half_life(
    samples: Iterable[Tuple[float, float]]
) -> Optional[float]:
    """Half-life of an exponentially decaying count series, or ``None``.

    *samples* are ``(time_offset, count)`` pairs — per-interval remap-miss
    counts, each count covering the interval that *ends* at its offset,
    measured from the transition's start.

    The estimator is the **median event time**: for counts decaying as
    ``e^(-lambda*t)`` the median arrival equals ``ln 2 / lambda`` — the
    half-life — exactly.  A log-linear least-squares fit would have to
    skip empty intervals (``log 0``), and empty late intervals are
    precisely the evidence of fast decay, so it systematically
    over-estimates the half-life on the sparse, noisy counts a real drain
    window yields; the quantile estimator has no such bias.

    Returns ``None`` when the series is unusable: fewer than two samples,
    no events at all, or not actually decaying (the later half of the
    window holds at least as much mass as the earlier half) — the caller
    then falls back to its default window.
    """
    points = sorted((float(t), float(c)) for t, c in samples)
    if len(points) < 2 or any(c < 0 for _, c in points):
        return None
    total = sum(c for _, c in points)
    if total <= 0:
        return None
    midpoint = (points[0][0] + points[-1][0]) / 2
    early = sum(c for t, c in points if t <= midpoint)
    if total - early >= early:
        return None
    half = total / 2
    cumulative = 0.0
    previous_t = 0.0
    for t, c in points:
        if cumulative + c >= half:
            fraction = (half - cumulative) / c
            median_t = previous_t + fraction * (t - previous_t)
            return median_t if median_t > 0 else None
        cumulative += c
        previous_t = t
    return None  # pragma: no cover - unreachable (total > 0)


class FixedTTLPolicy:
    """The paper's constant drain window behind the policy interface."""

    def __init__(self, ttl: float = DEFAULT_TTL) -> None:
        if ttl <= 0:
            raise ConfigurationError(f"ttl must be > 0, got {ttl}")
        self.ttl = ttl

    def observe_decay(
        self, samples: Sequence[Tuple[float, float]]
    ) -> Optional[float]:
        """Accepted for interface parity; a constant learns nothing."""
        return None

    def ttl_for(self, n_old: Optional[int] = None,
                n_new: Optional[int] = None) -> float:
        """The constant, whatever the transition."""
        return self.ttl


class AdaptiveTTLPolicy:
    """Sizes each drain window from observed remap-miss decay.

    Args:
        default_ttl: window used until the first usable decay observation
            (and whenever the observation history empties).
        min_ttl / max_ttl: clamp bounds for every returned window — the
            floor keeps a burst of fast decays from closing windows before
            digests can help; the ceiling bounds the energy a draining
            server can burn.
        target_residual: the remap-miss rate fraction allowed to survive
            the window; the window is sized to ``half_life *
            log2(1 / target_residual)`` (e.g. 0.05 -> ~4.3 half-lives).
        window: how many recent transitions' half-lives to remember; the
            estimate is their median, so one anomalous transition cannot
            swing the next window.

    The returned TTL is monotone in the observed half-life: slower decay
    (a colder working set re-registering slowly) always gets an equal or
    longer window, subject to the clamps.
    """

    def __init__(
        self,
        default_ttl: float = DEFAULT_TTL,
        min_ttl: float = 5.0,
        max_ttl: float = 300.0,
        target_residual: float = 0.05,
        window: int = 8,
    ) -> None:
        if min_ttl <= 0 or max_ttl < min_ttl:
            raise ConfigurationError(
                f"need 0 < min_ttl <= max_ttl, got ({min_ttl}, {max_ttl})"
            )
        if default_ttl <= 0:
            raise ConfigurationError(
                f"default_ttl must be > 0, got {default_ttl}"
            )
        if not 0 < target_residual < 1:
            raise ConfigurationError(
                f"target_residual must be in (0, 1), got {target_residual}"
            )
        if window < 1:
            raise ConfigurationError(f"window must be >= 1, got {window}")
        self.default_ttl = default_ttl
        self.min_ttl = min_ttl
        self.max_ttl = max_ttl
        self.target_residual = target_residual
        self.half_lives: Deque[float] = deque(maxlen=window)

    # ------------------------------------------------------------- learning

    def observe_decay(
        self, samples: Sequence[Tuple[float, float]]
    ) -> Optional[float]:
        """Feed one transition's remap-miss series; returns the half-life
        recorded (``None`` when the series was unusable — not decaying or
        too short — in which case nothing is recorded)."""
        half_life = estimate_half_life(samples)
        if half_life is not None:
            self.half_lives.append(half_life)
        return half_life

    def record_half_life(self, half_life: float) -> None:
        """Record an externally estimated half-life (tests / replays)."""
        if half_life <= 0:
            raise ConfigurationError(
                f"half_life must be > 0, got {half_life}"
            )
        self.half_lives.append(half_life)

    # -------------------------------------------------------------- sizing

    @property
    def _median_half_life(self) -> Optional[float]:
        if not self.half_lives:
            return None
        ordered = sorted(self.half_lives)
        mid = len(ordered) // 2
        if len(ordered) % 2:
            return ordered[mid]
        return (ordered[mid - 1] + ordered[mid]) / 2

    def ttl_for(self, n_old: Optional[int] = None,
                n_new: Optional[int] = None) -> float:
        """The drain window for the next transition, clamped to bounds.

        ``n_old``/``n_new`` are accepted for interface parity (a future
        policy may scale the window with the remap fraction); the current
        sizing uses only the observed decay.
        """
        half_life = self._median_half_life
        if half_life is None:
            raw = self.default_ttl
        else:
            raw = half_life * math.log2(1.0 / self.target_residual)
        return min(self.max_ttl, max(self.min_ttl, raw))


#: TTL-sizing policies by name ("fixed" is the paper's constant window).
TTL_POLICIES: Registry = Registry("ttl policy")
TTL_POLICIES.register("fixed", FixedTTLPolicy)
TTL_POLICIES.register("adaptive", AdaptiveTTLPolicy)


def make_ttl_policy(name: str, **kwargs):
    """Instantiate a TTL policy by registered name."""
    return TTL_POLICIES.create(name, **kwargs)
