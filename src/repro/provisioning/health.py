"""Cluster health aggregation: the sensor half of the closed loop.

The paper's provisioning loop (Section VI) reads exactly one signal — the
measured data-retrieval delay — and assumes every active server is alive.
The resilience layer already *knows* more: per-server circuit breakers
track which paths are rejecting work, :class:`~repro.core.retrieval.FetchStats`
counts how often the engine served *around* a fault, clients count
reconnects, and the transition manager knows whether a drain window is
open.  :class:`ClusterHealthMonitor` folds those scattered signals into one
per-slot :class:`HealthSnapshot` the
:class:`~repro.provisioning.controller.DelayFeedbackController` can act on:
emergency scale-up when capacity is already gone, scale-down vetoes while
the cluster is impaired, and remap-miss series for the adaptive TTL policy.

The monitor is substrate-neutral the same way the retrieval engine is: it
reads zero-argument *source* callables and never does I/O, so the
simulator (:meth:`ClusterHealthMonitor.for_simulation`) and the live tier
(:meth:`ClusterHealthMonitor.for_frontend`) feed the identical snapshot
type — which is what makes sim-vs-live health parity testable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
)

from repro.core.retrieval import DEGRADED_EVENTS, FetchPath, FetchStats
from repro.errors import ConfigurationError
from repro.resilience import BreakerSnapshot, BreakerState

__all__ = ["HealthSnapshot", "ClusterHealthMonitor"]

#: FetchPath entries that only occur while remapped keys re-register after
#: a routing flip: old-owner pulls and digest false positives.  Their
#: per-window delta is the remap-miss signal the adaptive TTL policy fits.
REMAP_MISS_PATHS = (FetchPath.HIT_OLD, FetchPath.FALSE_POSITIVE_DB)


@dataclass(frozen=True)
class HealthSnapshot:
    """One observation window's cluster-health facts.

    All counters are **deltas over the window** (not cumulative totals),
    so a controller comparing consecutive snapshots sees rates, and an old
    incident cannot keep vetoing scale-downs forever.

    Attributes:
        at: observation time (the window's right edge).
        requests: fetches completed in the window.
        degraded: served-around fault counts per event label
            (see :data:`~repro.core.retrieval.DEGRADED_EVENTS`).
        open_servers: servers whose breaker was OPEN at *at*.
        half_open_servers: servers whose breaker was HALF_OPEN at *at*.
        failed_servers: servers the substrate reports crashed (simulator)
            — live tiers have no crash oracle, only breakers.
        reconnects: client reconnects in the window (live tier).
        remap_misses: old-owner pulls + digest false positives in the
            window — nonzero only while a drain window's working set is
            still re-registering.
        in_transition: True while a drain window was open at *at*.
        shed: requests shed by admission control in the window (the
            :attr:`~repro.core.retrieval.FetchPath.SHED` delta) — unlike
            ``degraded`` these were *not served*, so sustained shedding
            is a scale-up signal, not just a veto.
        queue_depth: outstanding admitted DB work at *at* (a gauge, not
            a delta — summed across watched frontends).
    """

    at: float
    requests: int = 0
    degraded: Mapping[str, int] = field(
        default_factory=lambda: {event: 0 for event in DEGRADED_EVENTS}
    )
    open_servers: FrozenSet[int] = frozenset()
    half_open_servers: FrozenSet[int] = frozenset()
    failed_servers: FrozenSet[int] = frozenset()
    reconnects: int = 0
    remap_misses: int = 0
    in_transition: bool = False
    shed: int = 0
    queue_depth: float = 0.0

    @property
    def unhealthy_servers(self) -> FrozenSet[int]:
        """Servers that cannot take load: tripped breaker or crashed."""
        return self.open_servers | self.failed_servers

    @property
    def degraded_events(self) -> int:
        """Total served-around faults in the window."""
        return sum(self.degraded.values())

    @property
    def degraded_rate(self) -> float:
        """Served-around faults per request in the window (0 when idle)."""
        return self.degraded_events / self.requests if self.requests else 0.0

    @property
    def shed_rate(self) -> float:
        """Requests shed per offered request in the window (0 when idle)."""
        return self.shed / self.requests if self.requests else 0.0

    @property
    def healthy(self) -> bool:
        """No impairment visible: nothing tripped, crashed, degrading,
        or shedding."""
        return (
            not self.unhealthy_servers
            and self.degraded_events == 0
            and self.reconnects == 0
            and self.shed == 0
        )


class ClusterHealthMonitor:
    """Aggregates resilience signals into per-window snapshots.

    Sources are zero-argument callables returning *cumulative* state; the
    monitor differences consecutive reads itself, so drivers wire the raw
    counters they already have and never maintain deltas:

    * :meth:`watch_stats` — a :class:`FetchStats` supplier (one per web
      server / frontend; several add up);
    * :meth:`watch_breakers` — a supplier of per-server
      :class:`BreakerSnapshot` mappings (live tier);
    * :meth:`watch_failures` — a supplier of crashed-server id sets
      (simulator);
    * :meth:`watch_reconnects` — a cumulative reconnect-count supplier;
    * :meth:`watch_transition` — a ``now -> bool`` drain-window probe.

    Call :meth:`observe` once per control slot; it appends to
    :attr:`history` and returns the new :class:`HealthSnapshot`.
    """

    def __init__(self, num_servers: int) -> None:
        if num_servers < 1:
            raise ConfigurationError(
                f"num_servers must be >= 1, got {num_servers}"
            )
        self.num_servers = num_servers
        self._stats_sources: List[Callable[[], FetchStats]] = []
        self._breaker_sources: List[
            Callable[[], Mapping[int, BreakerSnapshot]]
        ] = []
        self._failure_sources: List[Callable[[], Iterable[int]]] = []
        self._reconnect_sources: List[Callable[[], int]] = []
        self._depth_sources: List[Callable[[float], float]] = []
        self._transition_probe: Optional[Callable[[float], bool]] = None
        self._last_requests = 0
        self._last_degraded: Dict[str, int] = {}
        self._last_remap = 0
        self._last_reconnects = 0
        self._last_shed = 0
        #: every snapshot taken, oldest first
        self.history: List[HealthSnapshot] = []

    # -------------------------------------------------------------- wiring

    def watch_stats(self, source: Callable[[], FetchStats]) -> None:
        """Add a cumulative :class:`FetchStats` supplier."""
        self._stats_sources.append(source)

    def watch_breakers(
        self, source: Callable[[], Mapping[int, BreakerSnapshot]]
    ) -> None:
        """Add a per-server breaker-snapshot supplier
        (e.g. ``lambda: ResiliencePolicy.health(frontend.breakers)``)."""
        self._breaker_sources.append(source)

    def watch_failures(self, source: Callable[[], Iterable[int]]) -> None:
        """Add a crashed-server-id supplier (simulator substrate)."""
        self._failure_sources.append(source)

    def watch_reconnects(self, source: Callable[[], int]) -> None:
        """Add a cumulative reconnect-count supplier (live substrate)."""
        self._reconnect_sources.append(source)

    def watch_queue_depth(self, source: Callable[[float], float]) -> None:
        """Add an outstanding-DB-work gauge (``now -> depth``), e.g. a
        frontend's ``queue_depth``; watched gauges are summed per
        snapshot."""
        self._depth_sources.append(source)

    def watch_transition(self, probe: Callable[[float], bool]) -> None:
        """Set the drain-window probe (``now -> bool``)."""
        self._transition_probe = probe

    # ------------------------------------------------------------ observing

    def observe(self, now: float) -> HealthSnapshot:
        """Take one snapshot: read every source, difference the cumulative
        counters against the previous call, record and return."""
        requests_total = 0
        degraded_total: Dict[str, int] = {e: 0 for e in DEGRADED_EVENTS}
        remap_total = 0
        shed_total = 0
        for source in self._stats_sources:
            stats = source()
            requests_total += stats.total
            for event, count in stats.degraded.items():
                degraded_total[event] = degraded_total.get(event, 0) + count
            remap_total += sum(
                stats.counts.get(path, 0) for path in REMAP_MISS_PATHS
            )
            shed_total += stats.counts.get(FetchPath.SHED, 0)
        open_servers = set()
        half_open_servers = set()
        for source in self._breaker_sources:
            for server_id, snapshot in source().items():
                if snapshot.state is BreakerState.OPEN:
                    open_servers.add(server_id)
                elif snapshot.state is BreakerState.HALF_OPEN:
                    half_open_servers.add(server_id)
        failed = set()
        for source in self._failure_sources:
            failed.update(source())
        reconnects_total = sum(
            source() for source in self._reconnect_sources
        )
        snapshot = HealthSnapshot(
            at=now,
            requests=max(0, requests_total - self._last_requests),
            degraded={
                event: max(
                    0, degraded_total[event] - self._last_degraded.get(event, 0)
                )
                for event in degraded_total
            },
            open_servers=frozenset(open_servers),
            half_open_servers=frozenset(half_open_servers),
            failed_servers=frozenset(failed),
            reconnects=max(0, reconnects_total - self._last_reconnects),
            remap_misses=max(0, remap_total - self._last_remap),
            in_transition=(
                self._transition_probe(now)
                if self._transition_probe is not None
                else False
            ),
            shed=max(0, shed_total - self._last_shed),
            queue_depth=sum(
                source(now) for source in self._depth_sources
            ),
        )
        self._last_requests = requests_total
        self._last_degraded = degraded_total
        self._last_remap = remap_total
        self._last_reconnects = reconnects_total
        self._last_shed = shed_total
        self.history.append(snapshot)
        return snapshot

    # ----------------------------------------------------------- factories

    @classmethod
    def for_frontend(cls, frontend) -> "ClusterHealthMonitor":
        """A monitor wired to a live
        :class:`~repro.net.webtier.AsyncProteusFrontend`: its breakers (via
        :meth:`~repro.resilience.ResiliencePolicy.health`), engine stats,
        client reconnects, and drain-window state."""
        from repro.resilience import ResiliencePolicy

        monitor = cls(len(frontend.endpoints))
        monitor.watch_stats(lambda: frontend.stats)
        monitor.watch_breakers(
            lambda: ResiliencePolicy.health(frontend.breakers)
        )
        monitor.watch_reconnects(lambda: frontend.reconnects)
        monitor.watch_queue_depth(lambda now: frontend.queue_depth(now))
        monitor.watch_transition(
            lambda now: frontend._manager.in_transition(now)
        )
        return monitor

    @classmethod
    def for_simulation(cls, cluster, webs) -> "ClusterHealthMonitor":
        """A monitor wired to the simulator substrate: a
        :class:`~repro.cache.cluster.CacheCluster` (crash oracle +
        drain-window state) and its web servers' engine stats."""
        monitor = cls(cluster.num_servers)
        for web in webs:
            monitor.watch_stats(lambda web=web: web.stats)
            if hasattr(web, "queue_depth"):
                monitor.watch_queue_depth(
                    lambda now, web=web: web.queue_depth(now)
                )
        monitor.watch_failures(cluster.failed_servers)
        monitor.watch_transition(cluster.transitions.in_transition)
        return monitor
