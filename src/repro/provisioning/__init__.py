"""Provisioning: policies, the delay-feedback controller, and the actuator."""

from repro.provisioning.actuator import AppliedTransition, ProvisioningActuator
from repro.provisioning.controller import (
    DEFAULT_DELAY_BOUND,
    DEFAULT_DELAY_REFERENCE,
    DelayFeedbackController,
    run_feedback_loop,
)
from repro.provisioning.health import ClusterHealthMonitor, HealthSnapshot
from repro.provisioning.migrator import BackgroundMigrator, MigrationProgress
from repro.provisioning.order import (
    OrderedFleet,
    ServerSpec,
    efficiency_order,
    random_order,
)
from repro.provisioning.policies import (
    DEFAULT_SLOT_SECONDS,
    ProvisioningSchedule,
    limit_step_size,
    load_proportional_schedule,
    static_schedule,
)
from repro.provisioning.ttl import (
    TTL_POLICIES,
    AdaptiveTTLPolicy,
    FixedTTLPolicy,
    make_ttl_policy,
)

__all__ = [
    "AdaptiveTTLPolicy",
    "AppliedTransition",
    "BackgroundMigrator",
    "ClusterHealthMonitor",
    "MigrationProgress",
    "DEFAULT_DELAY_BOUND",
    "DEFAULT_DELAY_REFERENCE",
    "DEFAULT_SLOT_SECONDS",
    "DelayFeedbackController",
    "FixedTTLPolicy",
    "HealthSnapshot",
    "OrderedFleet",
    "ProvisioningActuator",
    "ProvisioningSchedule",
    "ServerSpec",
    "TTL_POLICIES",
    "efficiency_order",
    "limit_step_size",
    "load_proportional_schedule",
    "make_ttl_policy",
    "random_order",
    "run_feedback_loop",
    "static_schedule",
]
