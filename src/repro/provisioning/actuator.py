"""The provisioning actuator — Proteus itself, as the paper frames it.

"Our goal is to design a provisioning actuator that executes decisions
according to server provisioning policy without degrading the system
performance" (Section II).  The actuator takes the policy's ``n(t)``
schedule and drives the cache cluster through it, either smoothly (digest
broadcast + TTL drain; the Proteus scenario) or abruptly (the Naive /
Consistent scenarios).

When given an :class:`~repro.sim.events.EventLoop`, the actuator schedules
its own slot-boundary applications and the TTL-expiry finalization, so
experiment drivers only call :meth:`install`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.cache.cluster import CacheCluster
from repro.errors import ProvisioningError
from repro.provisioning.policies import ProvisioningSchedule

if TYPE_CHECKING:  # avoid a circular import with repro.sim.cluster
    from repro.sim.events import EventLoop


@dataclass
class AppliedTransition:
    """Record of one executed provisioning action.

    ``ceding`` and ``expected_remap`` capture the router backend's remap
    metadata at apply time: which old owners were asked for digests, and
    the predicted remapped key fraction (``None`` when the backend cannot
    bound it, e.g. power consistent hashing across a power-of-two band).
    ``ttl`` is the drain window this transition actually ran with —
    ``None`` for abrupt actions and for smooth ones that used the
    cluster's configured constant.
    """

    when: float
    n_old: int
    n_new: int
    smooth: bool
    ceding: Optional[List[int]] = None
    expected_remap: Optional[float] = None
    ttl: Optional[float] = None


class ProvisioningActuator:
    """Executes a provisioning schedule against a cache cluster.

    Args:
        cluster: the cache tier to drive.
        smooth: True = Proteus transitions (digests + TTL drain);
            False = abrupt power changes (Naive / Consistent).
        push_migration: additionally install a
            :class:`~repro.provisioning.migrator.BackgroundMigrator` on
            every smooth transition (the push-assisted extension); only
            effective when driven through :meth:`install` (it needs the
            event loop to schedule push ticks).
        push_batch / push_interval: the migrator's rate limit.
        ttl_policy: a TTL-sizing policy (``fixed`` / ``adaptive``, see
            :mod:`repro.provisioning.ttl`); when set, every smooth
            transition's drain window is sized by ``ttl_policy.ttl_for()``
            unless :meth:`apply` is handed an explicit ``ttl``.  ``None``
            keeps the cluster's configured constant.
    """

    def __init__(
        self,
        cluster: CacheCluster,
        smooth: bool = True,
        push_migration: bool = False,
        push_batch: int = 100,
        push_interval: float = 1.0,
        ttl_policy=None,
    ) -> None:
        self.cluster = cluster
        self.smooth = smooth
        self.push_migration = push_migration
        self.push_batch = push_batch
        self.push_interval = push_interval
        self.ttl_policy = ttl_policy
        self.applied: List[AppliedTransition] = []
        #: migrators created for smooth transitions (inspection/tests)
        self.migrators: List = []

    def apply(
        self, n_new: int, now: float, ttl: Optional[float] = None
    ) -> Optional[AppliedTransition]:
        """Move the cluster to *n_new* active servers at time *now*.

        Returns the record of the action, or ``None`` for a no-op.  With
        ``smooth=True`` the caller (or the event loop wiring in
        :meth:`install`) must later invoke
        ``cluster.finalize_expired(deadline)`` to close the drain window.
        *ttl* pins this transition's drain window; when ``None`` the
        configured ``ttl_policy`` (if any) sizes it, and with neither the
        cluster's constant applies.
        """
        n_old = self.cluster.active_count
        if n_new == n_old:
            return None
        if ttl is None and self.ttl_policy is not None:
            ttl = self.ttl_policy.ttl_for(n_old, n_new)
        if self.smooth:
            # One window at a time: if the previous one is still open the
            # TransitionManager raises; surface that as a schedule error.
            transition = self.cluster.scale_to(n_new, now, ttl=ttl)
        else:
            transition = self.cluster.abrupt_scale_to(n_new, now)
        if transition is None:
            return None
        router = self.cluster.router
        expected = getattr(router, "expected_remap_fraction", None)
        record = AppliedTransition(
            when=now,
            n_old=n_old,
            n_new=n_new,
            smooth=self.smooth,
            ceding=router.ceding_servers(n_old, n_new),
            expected_remap=expected(n_old, n_new) if callable(expected) else None,
            ttl=transition.ttl if self.smooth else None,
        )
        self.applied.append(record)
        return record

    def install(
        self, schedule: ProvisioningSchedule, loop: "EventLoop"
    ) -> List[Tuple[float, int]]:
        """Schedule every slot-boundary change of *schedule* on *loop*.

        Also arms the TTL finalization event after each smooth scale-down.
        Returns the ``(time, n_new)`` pairs that were armed.
        """
        armed: List[Tuple[float, int]] = []
        for when, _n_old, n_new in schedule.transitions():
            if when < loop.now:
                raise ProvisioningError(
                    f"schedule transition at {when} is in the loop's past "
                    f"({loop.now})"
                )
            loop.schedule_at(when, self._apply_and_arm, n_new, loop)
            armed.append((when, n_new))
        return armed

    def _apply_and_arm(self, n_new: int, loop: "EventLoop") -> None:
        record = self.apply(n_new, loop.now)
        if record is None or not self.smooth:
            return
        transition = self.cluster.transitions.current(loop.now)
        if transition is not None:
            # +epsilon so the expiry check sees now >= deadline.
            loop.schedule_at(
                transition.deadline + 1e-9,
                self.cluster.finalize_expired,
                transition.deadline + 1e-9,
            )
            if self.push_migration:
                from repro.provisioning.migrator import BackgroundMigrator

                migrator = BackgroundMigrator(
                    self.cluster,
                    transition,
                    batch_size=self.push_batch,
                    interval=self.push_interval,
                )
                migrator.install(loop)
                self.migrators.append(migrator)
