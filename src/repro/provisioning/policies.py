"""Provisioning policies and schedules.

The paper deliberately does not contribute a provisioning *policy* — it runs
one feedback loop once, records the resulting ``n(t)`` series (the circles
curve in Fig. 4), and then **applies the identical series to all four
scenarios** so that the only difference between them is load balancing and
transition behaviour.  :class:`ProvisioningSchedule` is that series; this
module builds one either from a workload trace (load-proportional sizing)
or from the delay-feedback controller in
:mod:`repro.provisioning.controller`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from repro.errors import ConfigurationError, ProvisioningError

#: The paper's feedback loop updates "every 30 minutes".
DEFAULT_SLOT_SECONDS = 1800.0


@dataclass
class ProvisioningSchedule:
    """A per-slot active-server-count series ``n(t)``.

    Attributes:
        slot_seconds: slot width.
        counts: ``counts[i]`` = active servers during slot ``i``.
    """

    slot_seconds: float
    counts: List[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.slot_seconds <= 0:
            raise ConfigurationError(
                f"slot_seconds must be > 0, got {self.slot_seconds}"
            )
        if not self.counts:
            raise ConfigurationError("schedule needs at least one slot")
        if any(c < 1 for c in self.counts):
            raise ProvisioningError("every slot must keep >= 1 server active")

    @property
    def num_slots(self) -> int:
        return len(self.counts)

    @property
    def duration(self) -> float:
        return self.num_slots * self.slot_seconds

    def slot_of(self, when: float) -> int:
        """Slot index for time *when* (clamped to the schedule)."""
        slot = int(when // self.slot_seconds)
        return min(max(slot, 0), self.num_slots - 1)

    def n_at(self, when: float) -> int:
        """Active count in force at time *when*."""
        return self.counts[self.slot_of(when)]

    def transitions(self) -> List[Tuple[float, int, int]]:
        """All ``(time, n_old, n_new)`` changes, in order."""
        changes: List[Tuple[float, int, int]] = []
        for slot in range(1, self.num_slots):
            if self.counts[slot] != self.counts[slot - 1]:
                changes.append(
                    (slot * self.slot_seconds, self.counts[slot - 1], self.counts[slot])
                )
        return changes

    def server_slot_total(self) -> int:
        """Sum of active counts over slots (proportional to ideal cache-tier
        energy; the Fig. 11 cache-tier saving is 1 minus this over N*slots)."""
        return sum(self.counts)


def static_schedule(
    num_servers: int, num_slots: int, slot_seconds: float = DEFAULT_SLOT_SECONDS
) -> ProvisioningSchedule:
    """The Static scenario: all servers on in every slot."""
    if num_servers < 1:
        raise ConfigurationError(f"num_servers must be >= 1, got {num_servers}")
    return ProvisioningSchedule(slot_seconds, [num_servers] * num_slots)


def load_proportional_schedule(
    slot_workloads: Sequence[float],
    per_server_capacity: float,
    num_servers: int,
    min_servers: int = 1,
    slot_seconds: float = DEFAULT_SLOT_SECONDS,
) -> ProvisioningSchedule:
    """Size each slot to its workload: ``n = ceil(workload / capacity)``.

    The paper notes the request count is "a reasonable estimation" of the
    real (memory-bound) load and uses it for provisioning; we do the same.

    Args:
        slot_workloads: per-slot request counts (or rates — any consistent
            unit).
        per_server_capacity: workload one server should carry per slot.
        num_servers: fleet size ``N`` (upper clamp).
        min_servers: lower clamp (paper keeps >= 1; production would keep a
            safety floor).
    """
    if per_server_capacity <= 0:
        raise ConfigurationError(
            f"per_server_capacity must be > 0, got {per_server_capacity}"
        )
    if not 1 <= min_servers <= num_servers:
        raise ConfigurationError(
            f"need 1 <= min_servers <= num_servers, got "
            f"({min_servers}, {num_servers})"
        )
    counts = [
        min(num_servers, max(min_servers, math.ceil(load / per_server_capacity)))
        for load in slot_workloads
    ]
    return ProvisioningSchedule(slot_seconds, counts)


def limit_step_size(
    schedule: ProvisioningSchedule, max_step: int = 1
) -> ProvisioningSchedule:
    """Clamp slot-to-slot changes to *max_step* servers.

    One transition per slot keeps each TTL drain window isolated (the
    :class:`~repro.core.transition.TransitionManager` forbids overlapping
    windows, and the paper's loop changes n gradually).
    """
    if max_step < 1:
        raise ConfigurationError(f"max_step must be >= 1, got {max_step}")
    smoothed = [schedule.counts[0]]
    for target in schedule.counts[1:]:
        previous = smoothed[-1]
        step = max(-max_step, min(max_step, target - previous))
        smoothed.append(previous + step)
    return ProvisioningSchedule(schedule.slot_seconds, smoothed)
