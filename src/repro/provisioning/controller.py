"""Delay-feedback provisioning controller.

The paper runs "the feedback control algorithm along with Proteus with the
delay bound set to 0.5 second [and] the feedback loop reference point ... to
0.4 second to tolerate overshot.  The loop updates its status every 30
minutes" (Section VI) — but omits the algorithm itself as out of scope.

We implement a conservative controller with those knobs:

* measure a per-slot delay statistic (the paper uses high percentiles);
* above the **bound**: scale up aggressively (proportional to overshoot);
* above the **reference** but under the bound: scale up by one;
* comfortably under the reference with headroom: scale down by one.

Headroom for scale-down is checked against rated load: a server is dropped
only when the per-server arrival rate after removal stays below 90% of
``per_server_rate`` *and* the M/M/1 projection stays under the reference —
delay alone is a bad down-trigger because an M/M/1 runs at low delay right
up to the saturation cliff.  This keeps the output series
shaped like the paper's Fig. 4 circles: it tracks the diurnal workload with
a small lag and never oscillates on noise.  (DESIGN.md records this as a
substitution: same interface and knobs, reconstructed internals.)
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional

from repro.errors import ConfigurationError
from repro.provisioning.policies import DEFAULT_SLOT_SECONDS, ProvisioningSchedule
from repro.sim.latency import mm1_response_time

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (health imports us not)
    from repro.provisioning.health import HealthSnapshot

#: Paper settings (Section VI).
DEFAULT_DELAY_BOUND = 0.5
DEFAULT_DELAY_REFERENCE = 0.4


@dataclass
class DelayFeedbackController:
    """Per-slot active-count controller keyed to a delay reference.

    Attributes:
        num_servers: fleet size ``N``.
        delay_bound: hard bound (paper: 0.5 s).
        delay_reference: set point with overshoot margin (paper: 0.4 s).
        min_servers: scale-down floor.
        per_server_rate: requests/s one cache server absorbs at acceptable
            delay (used for the scale-down headroom check).
        scale_down_margin: only drop a server when the projected delay stays
            below ``delay_reference * scale_down_margin``.
        degraded_rate_threshold: served-around-fault rate (per request, per
            :attr:`HealthSnapshot.degraded_rate`) above which a slot is
            treated as impaired: scale-down is vetoed and one emergency
            server is added even if the measured delay still looks fine.
        remap_veto_threshold: remap misses per request above which the
            previous transition is considered still decaying and
            scale-down is vetoed; a handful of straggler old-owner hits
            below the threshold no longer blocks descent forever.
        shed_rate_threshold: admission-shed rate (per offered request,
            per :attr:`HealthSnapshot.shed_rate`) above which the slot
            is treated as overloaded: sustained shedding means demand
            the tier refused to serve, so one server is added and
            scale-down is vetoed — the closed loop's answer to a flash
            crowd the delay signal alone under-reports (shed requests
            never post a latency sample).

    Passing a :class:`~repro.provisioning.health.HealthSnapshot` to
    :meth:`update` closes the loop with the resilience layer; with
    ``health=None`` (the default) the controller's behaviour is
    bit-identical to the open-loop, delay-only original.
    """

    num_servers: int
    delay_bound: float = DEFAULT_DELAY_BOUND
    delay_reference: float = DEFAULT_DELAY_REFERENCE
    min_servers: int = 1
    per_server_rate: float = 200.0
    scale_down_margin: float = 0.75
    degraded_rate_threshold: float = 0.05
    remap_veto_threshold: float = 0.05
    shed_rate_threshold: float = 0.02
    _n: int = field(init=False)
    history: List[int] = field(init=False, default_factory=list)
    #: slots where health feedback forced extra capacity
    emergency_scale_ups: int = field(init=False, default=0)
    #: slots where health feedback blocked a wanted scale-down
    vetoed_scale_downs: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        if self.num_servers < 1:
            raise ConfigurationError(
                f"num_servers must be >= 1, got {self.num_servers}"
            )
        if not 0 < self.delay_reference <= self.delay_bound:
            raise ConfigurationError(
                "need 0 < delay_reference <= delay_bound, got "
                f"({self.delay_reference}, {self.delay_bound})"
            )
        if not 1 <= self.min_servers <= self.num_servers:
            raise ConfigurationError(
                f"min_servers out of range: {self.min_servers}"
            )
        if self.degraded_rate_threshold < 0:
            raise ConfigurationError(
                "degraded_rate_threshold must be >= 0, got "
                f"{self.degraded_rate_threshold}"
            )
        if self.remap_veto_threshold < 0:
            raise ConfigurationError(
                "remap_veto_threshold must be >= 0, got "
                f"{self.remap_veto_threshold}"
            )
        if self.shed_rate_threshold < 0:
            raise ConfigurationError(
                "shed_rate_threshold must be >= 0, got "
                f"{self.shed_rate_threshold}"
            )
        self._n = self.num_servers
        self.history = [self._n]

    @property
    def current(self) -> int:
        """The active count currently commanded."""
        return self._n

    def _projected_delay(self, arrival_rate: float, servers: int) -> float:
        """M/M/1 projection of per-request delay with *servers* active."""
        per_server = arrival_rate / max(1, servers)
        # Service rate: a server at its rated load runs at ~70% utilization.
        service_rate = self.per_server_rate / 0.7
        return mm1_response_time(per_server, service_rate)

    def update(
        self,
        measured_delay: float,
        arrival_rate: float,
        health: Optional["HealthSnapshot"] = None,
    ) -> int:
        """One 30-minute loop iteration.

        Args:
            measured_delay: the slot's delay statistic (seconds).
            arrival_rate: the slot's request rate (req/s), used as the
                feed-forward term for sizing steps and headroom.
            health: the slot's :class:`HealthSnapshot` — closes the loop
                with the resilience layer.  ``None`` (default) reproduces
                the delay-only behaviour exactly.

        With health feedback the delay-derived candidate is adjusted:

        * **emergency scale-up** — an unhealthy server (tripped breaker or
          crash) among the active set is capacity already gone, so the
          target is raised to cover the load with the survivors *plus* the
          lost count; a high degraded-rate without an identified culprit
          still adds one server.  The rule cannot run away: once enough
          healthy servers cover the load, no further growth is forced.
        * **scale-down veto** — no server is dropped while any server is
          unhealthy, a drain window is open, or the previous transition's
          remap-miss rate is still above ``remap_veto_threshold``; shedding
          capacity during an incident converts the next fault into an
          outage.

        Returns:
            The new active count for the next slot.
        """
        if measured_delay < 0:
            raise ConfigurationError(
                f"measured_delay must be >= 0, got {measured_delay}"
            )
        if arrival_rate < 0:
            raise ConfigurationError(
                f"arrival_rate must be >= 0, got {arrival_rate}"
            )
        n = self._n
        candidate = n
        if measured_delay > self.delay_bound:
            # Emergency: add capacity proportional to the overshoot.
            overshoot = measured_delay / self.delay_bound
            step = max(1, min(self.num_servers - n, round(overshoot)))
            candidate = n + step
        elif measured_delay > self.delay_reference:
            candidate = n + 1
        elif measured_delay < self.delay_reference * self.scale_down_margin:
            if n > self.min_servers:
                headroom_ok = (
                    arrival_rate / (n - 1) <= 0.9 * self.per_server_rate
                )
                projected = self._projected_delay(arrival_rate, n - 1)
                if headroom_ok and projected < self.delay_reference:
                    candidate = n - 1
        if health is not None:
            candidate = self._apply_health(candidate, n, arrival_rate, health)
        n = min(self.num_servers, max(self.min_servers, candidate))
        self._n = n
        self.history.append(n)
        return n

    def _apply_health(
        self,
        candidate: int,
        n: int,
        arrival_rate: float,
        health: "HealthSnapshot",
    ) -> int:
        """Adjust the delay-derived *candidate* with resilience signals."""
        shedding = health.shed_rate > self.shed_rate_threshold
        lost = len([s for s in health.unhealthy_servers if s < n])
        required = max(
            self.min_servers,
            math.ceil(arrival_rate / (0.9 * self.per_server_rate))
            if arrival_rate > 0
            else self.min_servers,
        )
        if lost and n - lost < required:
            # Treat lost servers as capacity already gone: provision enough
            # healthy servers to carry the load.  Bounded by the fleet and
            # by `required + lost`, so a permanently dead server cannot
            # drive unbounded growth slot after slot.
            target = min(self.num_servers, required + lost)
            if target > candidate:
                candidate = target
                self.emergency_scale_ups += 1
        elif not health.unhealthy_servers and (
            health.degraded_rate > self.degraded_rate_threshold or shedding
        ):
            # The path is degrading without a clearly-dead server (resets,
            # reconnect storms), or admission control is refusing work the
            # tier should absorb: add one server's worth of slack.
            if candidate <= n < self.num_servers:
                candidate = n + 1
                self.emergency_scale_ups += 1
        decaying = health.remap_misses > self.remap_veto_threshold * max(
            1, health.requests
        )
        impaired = (
            bool(health.unhealthy_servers)
            or health.in_transition
            or decaying
            or shedding
        )
        if candidate < n and impaired:
            self.vetoed_scale_downs += 1
            candidate = n
        return candidate

    def as_schedule(
        self, slot_seconds: float = DEFAULT_SLOT_SECONDS
    ) -> ProvisioningSchedule:
        """The decision history as a replayable schedule (Fig. 4 circles)."""
        return ProvisioningSchedule(slot_seconds, list(self.history))


def run_feedback_loop(
    slot_rates: List[float],
    num_servers: int,
    per_server_rate: float = 200.0,
    initial: Optional[int] = None,
    slot_seconds: float = DEFAULT_SLOT_SECONDS,
    delay_bound: float = DEFAULT_DELAY_BOUND,
    delay_reference: float = DEFAULT_DELAY_REFERENCE,
) -> ProvisioningSchedule:
    """Drive the controller over a workload, simulating the delay it reacts to.

    This reproduces the paper's preparatory experiment: run the loop once
    over the trace, keep the resulting ``n(t)`` (Fig. 4), then replay that
    series in every scenario.  The measured delay fed back is the M/M/1
    projection at the *current* size plus the rate — a stand-in for the real
    measurement the paper's loop observed.
    """
    controller = DelayFeedbackController(
        num_servers=num_servers,
        per_server_rate=per_server_rate,
        delay_bound=delay_bound,
        delay_reference=delay_reference,
    )
    if initial is None:
        # Start sized to the first slot's load rather than at full fleet, as
        # the paper's loop had converged before its recorded day began.
        initial = min(
            num_servers,
            max(1, math.ceil(slot_rates[0] / per_server_rate) if slot_rates else 1),
        )
    controller._n = initial
    controller.history[:] = [initial]
    for rate in slot_rates:
        projected = controller._projected_delay(rate, controller.current)
        # A saturated M/M/1 projects infinity; feed the controller a finite
        # over-bound signal so its proportional step stays bounded.
        measured = min(projected, delay_bound * 4)
        controller.update(measured, rate)
    # history has one leading entry (initial) plus one per slot; drop the
    # initial so the schedule aligns 1:1 with slot_rates.
    return ProvisioningSchedule(slot_seconds, controller.history[1:])
