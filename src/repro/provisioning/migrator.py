"""Push-based background migration — an extension beyond the paper.

Proteus migrates hot data *on demand*: the first request for a remapped key
pulls it from the old owner (Algorithm 2).  The cost model is elegant —
zero wasted bandwidth — but it leaves a residue: keys that are hot on a
timescale *longer* than the TTL window are lost at power-off and must be
refetched from the database later (quantified by
``benchmarks/bench_ablation_ttl.py``).

:class:`BackgroundMigrator` trades bandwidth for that residue: during the
drain window it walks the moving keys of each source server in
most-recently-used-first order and *pushes* them to their new owners, rate
limited to ``batch_size`` keys every ``interval`` seconds.  Requests keep
using Algorithm 2 concurrently; a push never overwrites a newer value at
the destination (the destination may have been write-through-updated), and
keys the on-demand path already migrated are skipped for free.

This composes with the paper's protocol rather than replacing it: with the
migrator on, power-off at the TTL deadline loses only the keys that neither
a request nor the pusher reached.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

from repro.cache.cluster import CacheCluster
from repro.core.transition import Transition
from repro.errors import ConfigurationError

if TYPE_CHECKING:  # avoid importing the sim package at runtime
    from repro.sim.events import EventLoop


@dataclass
class MigrationProgress:
    """Counters for one background-migration run."""

    pushed: int = 0
    skipped_present: int = 0
    skipped_stale: int = 0
    ticks: int = 0
    bytes_pushed: int = 0


class BackgroundMigrator:
    """Rate-limited pusher for one transition's moving keys.

    Args:
        cluster: the cache tier.
        transition: the in-flight transition whose drain window we fill.
        batch_size: keys pushed per tick (the bandwidth knob).
        interval: seconds between ticks.
        hot_ttl: only push keys touched within this window (defaults to the
            transition's TTL — the paper's hotness horizon).
    """

    def __init__(
        self,
        cluster: CacheCluster,
        transition: Transition,
        batch_size: int = 100,
        interval: float = 1.0,
        hot_ttl: Optional[float] = None,
    ) -> None:
        if batch_size < 1:
            raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
        if interval <= 0:
            raise ConfigurationError(f"interval must be > 0, got {interval}")
        self.cluster = cluster
        self.transition = transition
        self.batch_size = batch_size
        self.interval = interval
        self.hot_ttl = hot_ttl if hot_ttl is not None else transition.ttl
        self.progress = MigrationProgress()
        self._queue: Optional[List[str]] = None

    # ------------------------------------------------------------- planning

    def _source_servers(self) -> List[int]:
        """Servers whose keys move — the transition's ceding set.

        Populated from the router backend's remap metadata when the
        transition was begun with a ``ceding`` hint (for Proteus
        scale-down: exactly the draining servers); otherwise the
        conservative every-old-owner fallback.
        """
        return self.transition.ceding_servers()

    def _moving_keys(self, now: float) -> List[str]:
        """Hot keys that change owner, MRU-first per source server."""
        router = self.cluster.router
        n_old, n_new = self.transition.n_old, self.transition.n_new
        moving: List[str] = []
        for source in self._source_servers():
            server = self.cluster.server(source)
            if not server.state.serves_requests:
                continue
            items = [
                server.store.peek(key)
                for key in server.store.hot_keys(now, self.hot_ttl)
            ]
            items = [item for item in items if item is not None]
            items.sort(key=lambda item: -item.last_access)  # MRU first
            for item in items:
                if (
                    router.route(item.key, n_old) == source
                    and router.route(item.key, n_new) != source
                ):
                    moving.append(item.key)
        return moving

    # ------------------------------------------------------------- pushing

    def tick(self, now: float) -> int:
        """Push up to ``batch_size`` keys; returns how many were pushed.

        Idempotent after exhaustion; safe to call after the window closed
        (it simply pushes nothing because sources are powered off).
        """
        if self._queue is None:
            self._queue = self._moving_keys(now)
        self.progress.ticks += 1
        pushed = 0
        router = self.cluster.router
        n_old, n_new = self.transition.n_old, self.transition.n_new
        while self._queue and pushed < self.batch_size:
            key = self._queue.pop(0)
            source = self.cluster.server(router.route(key, n_old))
            destination = self.cluster.server(router.route(key, n_new))
            if not source.state.serves_requests:
                self.progress.skipped_stale += 1
                continue
            item = source.store.peek(key)
            if item is None or item.expired(now) or item.created_at > now:
                self.progress.skipped_stale += 1
                continue
            if destination.store.peek(key) is not None:
                # Already migrated (on demand, or by write-through).
                self.progress.skipped_present += 1
                continue
            destination.set(key, item.value, now=now, size=item.size)
            self.progress.pushed += 1
            self.progress.bytes_pushed += item.size
            pushed += 1
        return pushed

    @property
    def done(self) -> bool:
        """True once the queue has been built and drained."""
        return self._queue is not None and not self._queue

    def install(self, loop: "EventLoop") -> None:
        """Schedule ticks on *loop* until the window closes or the queue
        drains."""
        def run_tick() -> None:
            if loop.now >= self.transition.deadline:
                return
            self.tick(loop.now)
            if not self.done and loop.now + self.interval < self.transition.deadline:
                loop.schedule(self.interval, run_tick)

        loop.schedule_at(max(loop.now, self.transition.started_at), run_tick)
