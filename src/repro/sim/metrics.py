"""Measurement: time series, percentile digests, and slotted recorders.

The paper's plots are all per-slot aggregates: Fig. 5 is a per-slot min/max
load ratio, Fig. 9 groups response times "into 480 slots according to
physical time" and plots the 99.9th percentile, Fig. 10 samples power every
15 seconds.  :class:`SlottedRecorder` is the shared machinery: values are
binned by timestamp into fixed-width slots and each slot reduces to count /
mean / percentile on demand.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError


def percentile(values: Sequence[float], pct: float) -> float:
    """The *pct*-th percentile (0..100) by linear interpolation.

    Matches ``numpy.percentile(..., method="linear")`` without requiring the
    inputs to be a numpy array; raises on empty input rather than returning
    NaN, because a silent NaN in a benchmark table hides missing data.
    """
    if not values:
        raise ConfigurationError("percentile of empty sequence")
    if not 0.0 <= pct <= 100.0:
        raise ConfigurationError(f"pct must be in [0, 100], got {pct}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * pct / 100.0
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    weight = rank - low
    return ordered[low] * (1.0 - weight) + ordered[high] * weight


@dataclass
class TimeSeries:
    """An append-only series of ``(time, value)`` points."""

    times: List[float] = field(default_factory=list)
    values: List[float] = field(default_factory=list)

    def append(self, when: float, value: float) -> None:
        """Append a point; time must be non-decreasing."""
        if self.times and when < self.times[-1]:
            raise ConfigurationError(
                f"time series must be appended in order: {when} < {self.times[-1]}"
            )
        self.times.append(when)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def window(self, start: float, end: float) -> List[float]:
        """Values with ``start <= time < end``."""
        lo = bisect.bisect_left(self.times, start)
        hi = bisect.bisect_left(self.times, end)
        return self.values[lo:hi]

    def last(self) -> Optional[Tuple[float, float]]:
        """Most recent point, or ``None`` when empty."""
        if not self.times:
            return None
        return self.times[-1], self.values[-1]

    def integrate(self) -> float:
        """Trapezoidal integral of value over time (e.g. W x s -> J)."""
        total = 0.0
        for i in range(1, len(self.times)):
            dt = self.times[i] - self.times[i - 1]
            total += dt * (self.values[i] + self.values[i - 1]) / 2.0
        return total


class SlottedRecorder:
    """Bins samples into fixed-width time slots and reduces per slot.

    Args:
        slot_seconds: slot width (the paper uses 30-minute provisioning
            slots, 480 plot slots, and 15-second power samples — all are
            instances of this with different widths).
        start: time of the left edge of slot 0.
    """

    def __init__(self, slot_seconds: float, start: float = 0.0) -> None:
        if slot_seconds <= 0:
            raise ConfigurationError(
                f"slot_seconds must be > 0, got {slot_seconds}"
            )
        self.slot_seconds = slot_seconds
        self.start = start
        self._slots: Dict[int, List[float]] = {}

    def slot_of(self, when: float) -> int:
        """Slot index containing time *when*."""
        return int((when - self.start) // self.slot_seconds)

    def record(self, when: float, value: float) -> None:
        """Add one sample."""
        self._slots.setdefault(self.slot_of(when), []).append(value)

    def slots(self) -> List[int]:
        """Slot indices that hold at least one sample, ascending."""
        return sorted(self._slots)

    def samples(self, slot: int) -> List[float]:
        """Raw samples in *slot* (empty list when none)."""
        return list(self._slots.get(slot, []))

    def count(self, slot: int) -> int:
        return len(self._slots.get(slot, ()))

    def mean(self, slot: int) -> float:
        """Mean of the slot's samples; raises on an empty slot."""
        samples = self._slots.get(slot)
        if not samples:
            raise ConfigurationError(f"slot {slot} has no samples")
        return sum(samples) / len(samples)

    def pct(self, slot: int, pct_rank: float) -> float:
        """Percentile of the slot's samples; raises on an empty slot."""
        samples = self._slots.get(slot)
        if not samples:
            raise ConfigurationError(f"slot {slot} has no samples")
        return percentile(samples, pct_rank)

    def series(self, reducer: str = "mean", pct_rank: float = 99.9) -> TimeSeries:
        """Reduce every non-empty slot to one point at the slot midpoint.

        Args:
            reducer: ``mean``, ``max``, ``min``, ``count``, ``sum``
                or ``pct`` (with *pct_rank*).
        """
        out = TimeSeries()
        for slot in self.slots():
            samples = self._slots[slot]
            if reducer == "mean":
                value = sum(samples) / len(samples)
            elif reducer == "max":
                value = max(samples)
            elif reducer == "min":
                value = min(samples)
            elif reducer == "count":
                value = float(len(samples))
            elif reducer == "sum":
                value = float(sum(samples))
            elif reducer == "pct":
                value = percentile(samples, pct_rank)
            else:
                raise ConfigurationError(f"unknown reducer {reducer!r}")
            midpoint = self.start + (slot + 0.5) * self.slot_seconds
            out.append(midpoint, value)
        return out


class HistogramDigest:
    """Constant-memory percentile estimation over log-spaced buckets.

    The Fig. 9 experiment stores every latency sample; for day-long or
    production-scale runs that is gigabytes.  This digest keeps
    logarithmically spaced buckets between ``low`` and ``high``, so any
    percentile is answered within a fixed relative error (one bucket width,
    ~``ratio`` per decade) using a few KB — the standard latency-histogram
    trick (HdrHistogram-style).

    Args:
        low: smallest resolvable value (everything below lands in bucket 0).
        high: largest resolvable value (everything above lands in the
            overflow bucket, and :meth:`pct` returns ``high`` for it).
        buckets_per_decade: resolution; 100 gives ~2.3% relative error.
    """

    def __init__(
        self,
        low: float = 1e-4,
        high: float = 1e3,
        buckets_per_decade: int = 100,
    ) -> None:
        if not 0 < low < high:
            raise ConfigurationError(
                f"need 0 < low < high, got ({low}, {high})"
            )
        if buckets_per_decade < 1:
            raise ConfigurationError(
                f"buckets_per_decade must be >= 1, got {buckets_per_decade}"
            )
        self.low = low
        self.high = high
        self._scale = buckets_per_decade / math.log(10.0)
        self._num_buckets = int(math.log(high / low) * self._scale) + 2
        self._counts = [0] * self._num_buckets
        self.count = 0
        self.total = 0.0
        self._max = 0.0

    def _bucket_of(self, value: float) -> int:
        if value <= self.low:
            return 0
        if value >= self.high:
            return self._num_buckets - 1
        return 1 + int(math.log(value / self.low) * self._scale)

    def _bucket_value(self, index: int) -> float:
        if index <= 0:
            return self.low
        if index >= self._num_buckets - 1:
            return self.high
        return self.low * math.exp((index - 0.5) / self._scale)

    def record(self, value: float) -> None:
        """Add one sample (must be >= 0)."""
        if value < 0:
            raise ConfigurationError(f"value must be >= 0, got {value}")
        self._counts[self._bucket_of(value)] += 1
        self.count += 1
        self.total += value
        if value > self._max:
            self._max = value

    @property
    def mean(self) -> float:
        """Exact mean of recorded samples (tracked outside the buckets)."""
        if self.count == 0:
            raise ConfigurationError("mean of empty digest")
        return self.total / self.count

    @property
    def max_value(self) -> float:
        """Exact maximum of recorded samples."""
        return self._max

    def pct(self, pct_rank: float) -> float:
        """Approximate percentile (bucket midpoint of the target rank)."""
        if self.count == 0:
            raise ConfigurationError("percentile of empty digest")
        if not 0.0 <= pct_rank <= 100.0:
            raise ConfigurationError(
                f"pct_rank must be in [0, 100], got {pct_rank}"
            )
        target = pct_rank / 100.0 * (self.count - 1)
        cumulative = 0
        for index, bucket_count in enumerate(self._counts):
            cumulative += bucket_count
            if cumulative > target:
                return self._bucket_value(index)
        return self._bucket_value(self._num_buckets - 1)

    def merge(self, other: "HistogramDigest") -> None:
        """Fold *other*'s samples in (must share the same geometry)."""
        if (
            other.low != self.low
            or other.high != self.high
            or other._num_buckets != self._num_buckets
        ):
            raise ConfigurationError("cannot merge digests of different geometry")
        for index, bucket_count in enumerate(other._counts):
            self._counts[index] += bucket_count
        self.count += other.count
        self.total += other.total
        self._max = max(self._max, other._max)

    def memory_buckets(self) -> int:
        """Number of buckets held (the memory footprint driver)."""
        return self._num_buckets


def min_max_ratio(loads: Iterable[float]) -> float:
    """Fig. 5 metric: ``min(load) / max(load)`` over active servers.

    1.0 is perfectly balanced; 0.0 means at least one server sat idle while
    another worked.  Empty input raises; an all-zero slot returns 1.0 (no
    load is trivially balanced).
    """
    values = list(loads)
    if not values:
        raise ConfigurationError("min_max_ratio of empty load set")
    peak = max(values)
    if peak == 0:
        return 1.0
    return min(values) / peak
