"""Discrete-event simulation substrate: clock, events, queues, metrics."""

from repro.sim.clock import SimClock
from repro.sim.events import EventHandle, EventLoop
from repro.sim.latency import (
    Constant,
    Empirical,
    Exponential,
    LatencyModel,
    LogNormal,
    MultiServerQueue,
    ServiceQueue,
    Uniform,
    mm1_response_time,
)
from repro.sim.metrics import (
    SlottedRecorder,
    TimeSeries,
    min_max_ratio,
    percentile,
)

__all__ = [
    "Constant",
    "Empirical",
    "EventHandle",
    "EventLoop",
    "Exponential",
    "LatencyModel",
    "LogNormal",
    "MultiServerQueue",
    "ServiceQueue",
    "SimClock",
    "SlottedRecorder",
    "TimeSeries",
    "Uniform",
    "min_max_ratio",
    "mm1_response_time",
    "percentile",
]
