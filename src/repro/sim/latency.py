"""Latency models and FIFO service queues.

Two building blocks:

* :class:`LatencyModel` — samples a service time.  The delay-spike behaviour
  the paper measures (Fig. 9) does not come from the *distribution* of a
  single service time; it comes from **queueing**:

* :class:`ServiceQueue` / :class:`MultiServerQueue` — work-conserving FIFO
  queues tracked as "busy-until" horizons.  When the Naive scheme remaps
  ``n/(n+1)`` of keys, the resulting miss storm piles requests onto the
  database shards, the busy horizon races ahead of arrivals, and the tail
  latency explodes — exactly the Fig. 9 spike.  The queue abstraction is
  O(1)/O(log c) per request, so the cluster simulation stays fast.
"""

from __future__ import annotations

import heapq
import math
import random
from abc import ABC, abstractmethod
from typing import List, Sequence

from repro.errors import ConfigurationError


class LatencyModel(ABC):
    """A distribution of service times (seconds)."""

    @abstractmethod
    def sample(self, rng: random.Random) -> float:
        """Draw one service time using *rng* (injected for determinism)."""

    @property
    @abstractmethod
    def mean(self) -> float:
        """Expected service time."""


class Constant(LatencyModel):
    """Always the same service time."""

    def __init__(self, value: float) -> None:
        if value < 0:
            raise ConfigurationError(f"latency must be >= 0, got {value}")
        self.value = value

    def sample(self, rng: random.Random) -> float:
        return self.value

    @property
    def mean(self) -> float:
        return self.value


class Uniform(LatencyModel):
    """Uniform on ``[low, high]``."""

    def __init__(self, low: float, high: float) -> None:
        if not 0 <= low <= high:
            raise ConfigurationError(f"need 0 <= low <= high, got [{low}, {high}]")
        self.low = low
        self.high = high

    def sample(self, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)

    @property
    def mean(self) -> float:
        return (self.low + self.high) / 2.0


class Exponential(LatencyModel):
    """Exponential with the given mean (the classic M/M/1 service)."""

    def __init__(self, mean: float) -> None:
        if mean <= 0:
            raise ConfigurationError(f"mean must be > 0, got {mean}")
        self._mean = mean

    def sample(self, rng: random.Random) -> float:
        return rng.expovariate(1.0 / self._mean)

    @property
    def mean(self) -> float:
        return self._mean


class LogNormal(LatencyModel):
    """Log-normal with the given mean and sigma (heavy-tailed services)."""

    def __init__(self, mean: float, sigma: float = 0.5) -> None:
        if mean <= 0:
            raise ConfigurationError(f"mean must be > 0, got {mean}")
        if sigma < 0:
            raise ConfigurationError(f"sigma must be >= 0, got {sigma}")
        self._mean = mean
        self.sigma = sigma
        # mean of lognormal = exp(mu + sigma^2/2)  =>  mu = ln(mean) - sigma^2/2
        self._mu = math.log(mean) - sigma * sigma / 2.0

    def sample(self, rng: random.Random) -> float:
        return rng.lognormvariate(self._mu, self.sigma)

    @property
    def mean(self) -> float:
        return self._mean


class Empirical(LatencyModel):
    """Resample from observed service times (trace-driven latencies)."""

    def __init__(self, samples: Sequence[float]) -> None:
        if not samples:
            raise ConfigurationError("empirical model needs at least one sample")
        if any(s < 0 for s in samples):
            raise ConfigurationError("service times must be >= 0")
        self.samples = list(samples)
        self._mean = sum(self.samples) / len(self.samples)

    def sample(self, rng: random.Random) -> float:
        return rng.choice(self.samples)

    @property
    def mean(self) -> float:
        return self._mean


class ServiceQueue:
    """A single-server work-conserving FIFO queue.

    State is one number: the time the server becomes free.  ``enqueue``
    returns the request's completion time and advances the horizon.  This is
    an exact simulation of a FIFO single server (no approximation), at O(1)
    per request.
    """

    def __init__(self) -> None:
        self._busy_until = 0.0
        #: total busy seconds accumulated (utilization accounting)
        self.busy_time = 0.0
        #: requests served
        self.served = 0

    def enqueue(self, now: float, service_time: float) -> float:
        """Admit a request arriving at *now* needing *service_time* seconds.

        Returns the completion time ``max(now, busy_until) + service_time``.
        """
        if service_time < 0:
            raise ConfigurationError(
                f"service_time must be >= 0, got {service_time}"
            )
        start = max(now, self._busy_until)
        completion = start + service_time
        self._busy_until = completion
        self.busy_time += service_time
        self.served += 1
        return completion

    def delay(self, now: float) -> float:
        """Queueing delay a request arriving *now* would see before service."""
        return max(0.0, self._busy_until - now)

    def utilization(self, elapsed: float) -> float:
        """Fraction of *elapsed* seconds spent busy (capped at 1)."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time / elapsed)

    def reset(self) -> None:
        """Drop all queue state (server restart)."""
        self._busy_until = 0.0
        self.busy_time = 0.0
        self.served = 0


class MultiServerQueue:
    """A c-server work-conserving FIFO queue (threads in one web server).

    Maintains a heap of per-worker free times; an arrival is assigned to the
    earliest-free worker.
    """

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self._free_at: List[float] = [0.0] * workers
        heapq.heapify(self._free_at)
        self.busy_time = 0.0
        self.served = 0

    def enqueue(self, now: float, service_time: float) -> float:
        """Admit a request; returns its completion time."""
        if service_time < 0:
            raise ConfigurationError(
                f"service_time must be >= 0, got {service_time}"
            )
        earliest = heapq.heappop(self._free_at)
        start = max(now, earliest)
        completion = start + service_time
        heapq.heappush(self._free_at, completion)
        self.busy_time += service_time
        self.served += 1
        return completion

    def delay(self, now: float) -> float:
        """Queueing delay an arrival at *now* would see before service starts."""
        return max(0.0, self._free_at[0] - now)

    def utilization(self, elapsed: float) -> float:
        """Mean per-worker busy fraction over *elapsed* seconds."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time / (elapsed * self.workers))

    def reset(self) -> None:
        """Drop all queue state."""
        self._free_at = [0.0] * self.workers
        heapq.heapify(self._free_at)
        self.busy_time = 0.0
        self.served = 0


def mm1_response_time(arrival_rate: float, service_rate: float) -> float:
    """Analytic M/M/1 mean response time ``1 / (mu - lambda)``.

    Used by tests to validate :class:`ServiceQueue` against theory and by the
    provisioning controller to size the cluster.  Returns ``inf`` when the
    queue is unstable (``lambda >= mu``).
    """
    if service_rate <= 0:
        raise ConfigurationError(f"service_rate must be > 0, got {service_rate}")
    if arrival_rate < 0:
        raise ConfigurationError(f"arrival_rate must be >= 0, got {arrival_rate}")
    if arrival_rate >= service_rate:
        return math.inf
    return 1.0 / (service_rate - arrival_rate)
