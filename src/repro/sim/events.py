"""Discrete-event engine: a time-ordered heap of callbacks.

Minimal by design — the cluster experiments schedule millions of events, so
the hot path is ``heappush``/``heappop`` of plain tuples.  Determinism:
events at equal timestamps fire in scheduling order (a monotone sequence
number breaks ties), so runs are exactly reproducible.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional

from repro.errors import SimulationError
from repro.sim.clock import SimClock

Callback = Callable[..., None]

_CANCELLED = object()


class EventHandle:
    """Returned by :meth:`EventLoop.schedule`; supports cancellation."""

    __slots__ = ("_entry",)

    def __init__(self, entry: List[Any]) -> None:
        self._entry = entry

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if it already fired)."""
        self._entry[2] = _CANCELLED

    @property
    def cancelled(self) -> bool:
        return self._entry[2] is _CANCELLED


class EventLoop:
    """A discrete-event simulation loop over a :class:`SimClock`."""

    def __init__(self, start: float = 0.0) -> None:
        self.clock = SimClock(start)
        self._heap: List[List[Any]] = []
        self._sequence = itertools.count()
        #: total events dispatched (diagnostics)
        self.dispatched = 0

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self.clock.now

    def schedule_at(self, when: float, callback: Callback, *args: Any) -> EventHandle:
        """Run ``callback(*args)`` at absolute time *when*.

        Raises:
            SimulationError: *when* is before the current time.
        """
        if when < self.clock.now:
            raise SimulationError(
                f"cannot schedule at {when}, clock is at {self.clock.now}"
            )
        entry = [when, next(self._sequence), callback, args]
        heapq.heappush(self._heap, entry)
        return EventHandle(entry)

    def schedule(self, delay: float, callback: Callback, *args: Any) -> EventHandle:
        """Run ``callback(*args)`` after *delay* seconds."""
        if delay < 0:
            raise SimulationError(f"delay must be >= 0, got {delay}")
        return self.schedule_at(self.clock.now + delay, callback, *args)

    def __len__(self) -> int:
        """Number of pending (possibly cancelled) events."""
        return len(self._heap)

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next event, or ``None`` when idle."""
        while self._heap and self._heap[0][2] is _CANCELLED:
            heapq.heappop(self._heap)
        return self._heap[0][0] if self._heap else None

    def step(self) -> bool:
        """Dispatch one event; returns False when the queue is empty."""
        while self._heap:
            when, _seq, callback, args = heapq.heappop(self._heap)
            if callback is _CANCELLED:
                continue
            self.clock.advance_to(when)
            callback(*args)
            self.dispatched += 1
            return True
        return False

    def run_until(self, deadline: float) -> None:
        """Dispatch every event with timestamp <= *deadline*, then advance
        the clock to *deadline*."""
        while True:
            next_time = self.peek_time()
            if next_time is None or next_time > deadline:
                break
            self.step()
        self.clock.advance_to(deadline)

    def run(self, max_events: Optional[int] = None) -> int:
        """Dispatch until the queue drains (or *max_events*); returns count."""
        count = 0
        while self.step():
            count += 1
            if max_events is not None and count >= max_events:
                break
        return count
