"""Simulated time.

All times in the simulation are float seconds from epoch 0.  The clock only
moves forward; components take ``now`` as an argument (pure functions of
time) or hold a reference to a :class:`SimClock` owned by the event loop.
"""

from __future__ import annotations

from repro.errors import SimulationError


class SimClock:
    """A monotonically non-decreasing simulation clock."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    def advance_to(self, when: float) -> None:
        """Move the clock to *when*.

        Raises:
            SimulationError: *when* is in the past (events must be processed
                in timestamp order).
        """
        if when < self._now:
            raise SimulationError(
                f"clock cannot move backwards: {when} < {self._now}"
            )
        self._now = when

    def advance_by(self, delta: float) -> None:
        """Move the clock forward by *delta* seconds (must be >= 0)."""
        if delta < 0:
            raise SimulationError(f"delta must be >= 0, got {delta}")
        self._now += delta

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(now={self._now})"
