"""Smooth provisioning transition (paper Section IV, Algorithm 2).

When the provisioning policy changes the active count ``n(t) -> n(t+1)``:

1. every cache server snapshots its counting-Bloom-filter digest and the
   snapshots are broadcast to all web servers (a few KB each);
2. requests immediately route with the *new* mapping ``H_{t+1}``; on a miss
   at the new server, the web server consults the *old* owner's digest and,
   on a digest hit, fetches from the old server ("hot" data), else from the
   database; either way it writes the value into the new server;
3. after ``TTL`` seconds the servers being drained are powered off: every
   key touched within the window has already migrated, anything untouched is
   no longer "hot" and may be discarded (Section IV-A properties).

:class:`TransitionManager` is the state machine for this protocol.  It is
deliberately storage-agnostic: it tracks *which* mapping epochs are live and
*which* digests are in force; the actual fetch path (Algorithm 2 proper)
lives in :class:`repro.web.frontend.WebServer`, which consults this manager.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.bloom.bloom import BloomFilter
from repro.errors import TransitionError

#: Default drain window.  The paper defines "hot" as touched within the last
#: TTL seconds; 60 simulated seconds keeps benchmark runs short while leaving
#: the ratio TTL >> inter-arrival time realistic.
DEFAULT_TTL = 60.0


@dataclass
class Transition:
    """One in-flight provisioning transition ``n_old -> n_new``.

    Attributes:
        n_old: active count under the outgoing mapping ``H_t``.
        n_new: active count under the incoming mapping ``H_{t+1}``.
        started_at: simulation time the digests were broadcast.
        ttl: drain-window length; old owners stay queryable until
            ``started_at + ttl``.
        digests: per-server digest snapshots broadcast at the start.
        ceding: old-mapping owners that may lose keys in this transition,
            as reported by the router's backend remap metadata
            (:meth:`~repro.core.ring.RingBackend.ceding_servers`), or
            ``None`` when the initiator did not supply the hint.
    """

    n_old: int
    n_new: int
    started_at: float
    ttl: float
    digests: Dict[int, BloomFilter] = field(default_factory=dict)
    ceding: Optional[List[int]] = None

    @property
    def deadline(self) -> float:
        """Time at which drained servers may power off."""
        return self.started_at + self.ttl

    @property
    def is_scale_down(self) -> bool:
        return self.n_new < self.n_old

    @property
    def is_scale_up(self) -> bool:
        return self.n_new > self.n_old

    def draining_servers(self) -> List[int]:
        """Servers that power off when the window closes (scale-down only)."""
        return list(range(self.n_new, self.n_old)) if self.is_scale_down else []

    def ceding_servers(self) -> List[int]:
        """Old owners whose keys may have moved — the digest-consult set.

        Backend remap metadata when the initiator supplied it (see
        :meth:`TransitionManager.begin`); otherwise the conservative
        every-old-owner set, which is correct for any routing scheme.
        Distinct from :meth:`draining_servers`, the *physical* power-off
        set: on scale-up nothing drains but low-numbered servers still
        cede ranges to the newcomers.
        """
        if self.ceding is not None:
            return list(self.ceding)
        return list(range(self.n_old))

    def expired(self, now: float) -> bool:
        """True once the drain window has closed."""
        return now >= self.deadline

    def digest_hit(self, server: int, key, hashes=None) -> bool:
        """Check *key* against *server*'s broadcast digest.

        Returns False when no digest was broadcast for *server* — routing
        then skips the old server entirely and goes straight to the DB,
        which is the safe (if slower) fallback.  Pass *hashes* (a
        :class:`~repro.bloom.hashing.KeyHashes`) to reuse the double-hash
        pair the retrieval engine already computed for this key.
        """
        digest = self.digests.get(server)
        return digest is not None and digest.contains(key, hashes)

    def digest_hit_many(self, server: int, keys, hashes=()) -> List[bool]:
        """Batched :meth:`digest_hit`: one vectorized membership pass.

        Element ``i`` equals ``digest_hit(server, keys[i])`` exactly — the
        answer a grouped :class:`~repro.core.retrieval.CheckDigestMulti`
        probe carries is bit-identical to per-key consults.  No digest for
        *server* means all-False (same safe fallback as the scalar path).
        Pass *hashes* (per-key :class:`~repro.bloom.hashing.KeyHashes`
        aligned with *keys*) to reuse already-computed double-hash pairs.
        """
        keys = list(keys)
        digest = self.digests.get(server)
        if digest is None or not keys:
            return [False] * len(keys)
        bases = None
        if hashes:
            import numpy as np

            pairs = [h.digest_bases() for h in hashes]
            bases = (
                np.array([h1 for h1, _ in pairs], dtype=np.uint64),
                np.array([h2 for _, h2 in pairs], dtype=np.uint64),
            )
        return digest.contains_many(keys, bases)


class TransitionManager:
    """Tracks the current transition epoch for one cache cluster.

    A new transition may begin only after the previous drain window has
    closed — the paper's provisioning loop runs every 30 minutes with a TTL
    of seconds, so overlap indicates a driver bug and raises
    :class:`TransitionError`.
    """

    def __init__(self, initial_active: int, ttl: float = DEFAULT_TTL) -> None:
        if initial_active < 1:
            raise TransitionError(
                f"initial_active must be >= 1, got {initial_active}"
            )
        if ttl <= 0:
            raise TransitionError(f"ttl must be positive, got {ttl}")
        self.ttl = ttl
        self._active = initial_active
        self._current: Optional[Transition] = None
        #: transitions that completed, oldest first (for accounting/tests)
        self.history: List[Transition] = []
        #: callbacks fired with the list of powered-off servers when a
        #: scale-down drain window closes
        self.on_power_off: List[Callable[[List[int], float], None]] = []

    # --------------------------------------------------------------- state

    @property
    def active_count(self) -> int:
        """The committed active count (the *new* count once a transition starts)."""
        return self._active

    def current(self, now: float) -> Optional[Transition]:
        """The in-flight transition, auto-completing it if the window closed."""
        self._expire(now)
        return self._current

    def in_transition(self, now: float) -> bool:
        """True while a drain window is open."""
        return self.current(now) is not None

    # ---------------------------------------------------------------- ops

    def begin(
        self,
        n_new: int,
        now: float,
        digests: Optional[Dict[int, BloomFilter]] = None,
        ceding: Optional[List[int]] = None,
        ttl: Optional[float] = None,
    ) -> Optional[Transition]:
        """Start a transition to *n_new* at time *now*.

        Args:
            n_new: target active count.
            now: current simulation time.
            digests: digest snapshots for the servers web servers may need to
                consult — the *old owners* of remapped keys.  For scale-down
                that is (at least) the draining servers; for scale-up, the
                servers ceding ranges to the newcomers.
            ceding: the old owners that may lose keys, per the router
                backend's remap metadata
                (:meth:`~repro.core.router.Router.ceding_servers`); stored
                on the transition so migrators and digest consumers agree
                on the consult set.  ``None`` keeps the conservative
                every-old-owner default.
            ttl: drain-window length for *this* transition only — set by an
                adaptive TTL policy sizing the window from observed
                remap-miss decay.  ``None`` keeps the manager's configured
                constant.

        Returns:
            The new :class:`Transition`, or ``None`` when ``n_new`` equals
            the current count (no-op).

        Raises:
            TransitionError: a previous drain window is still open, or
                ``n_new`` / ``ttl`` is out of range.
        """
        self._expire(now)
        if self._current is not None:
            raise TransitionError(
                f"transition {self._current.n_old}->{self._current.n_new} "
                f"still draining until {self._current.deadline}"
            )
        if n_new < 1:
            raise TransitionError(f"n_new must be >= 1, got {n_new}")
        if ttl is not None and ttl <= 0:
            raise TransitionError(f"ttl must be positive, got {ttl}")
        if n_new == self._active:
            return None
        transition = Transition(
            n_old=self._active,
            n_new=n_new,
            started_at=now,
            ttl=self.ttl if ttl is None else ttl,
            digests=dict(digests or {}),
            ceding=list(ceding) if ceding is not None else None,
        )
        self._current = transition
        self._active = n_new
        return transition

    def routing_counts(self, now: float) -> "RoutingEpochs":
        """The (new, old) active counts web servers should route with."""
        transition = self.current(now)
        if transition is None:
            return RoutingEpochs(new=self._active, old=None, transition=None)
        return RoutingEpochs(
            new=transition.n_new, old=transition.n_old, transition=transition
        )

    def force_complete(self, now: float) -> None:
        """Close the drain window early (tests / emergency power-down)."""
        if self._current is None:
            raise TransitionError("no transition in flight")
        self._finish(self._current, now)

    # ------------------------------------------------------------ internal

    def _expire(self, now: float) -> None:
        if self._current is not None and self._current.expired(now):
            self._finish(self._current, self._current.deadline)

    def _finish(self, transition: Transition, when: float) -> None:
        self._current = None
        self.history.append(transition)
        powered_off = transition.draining_servers()
        if powered_off:
            for callback in self.on_power_off:
                callback(powered_off, when)


@dataclass(frozen=True)
class RoutingEpochs:
    """What a web server needs to route one request.

    Attributes:
        new: active count of the authoritative mapping ``H_{t+1}``.
        old: active count of the outgoing mapping ``H_t`` while a drain
            window is open, else ``None``.
        transition: the in-flight transition (digest access), or ``None``.
    """

    new: int
    old: Optional[int]
    transition: Optional[Transition]

    @property
    def in_transition(self) -> bool:
        return self.old is not None
