"""Proteus core: placement, routing, migration, and smooth transitions."""

from repro.core.migration import (
    MigrationPlan,
    empirical_remap_fraction,
    migration_lower_bound,
    naive_remap_fraction,
    plan_migration,
    remap_matrix,
)
from repro.core.placement import (
    HostRange,
    Placement,
    place_virtual_nodes,
    theoretical_min_vnodes,
)
from repro.core.replication import ReplicatedProteusRouter, no_conflict_probability
from repro.core.retrieval import (
    CheckDigest,
    FetchPath,
    FetchStats,
    LeaderWindowRegistry,
    ProbeCache,
    ReadDatabase,
    ReplicatedRetrievalEngine,
    RetrievalEngine,
    RetrievalOutcome,
    WaitForLeader,
    WriteBack,
)
from repro.core.ring import HashRing, VirtualNode, prefix_active
from repro.core.router import (
    DEFAULT_RING_SIZE,
    ConsistentRouter,
    NaiveRouter,
    ProteusRouter,
    Router,
    StaticRouter,
    make_router,
    scenario_routers,
)
from repro.core.transition import (
    DEFAULT_TTL,
    RoutingEpochs,
    Transition,
    TransitionManager,
)

__all__ = [
    "CheckDigest",
    "ConsistentRouter",
    "DEFAULT_RING_SIZE",
    "DEFAULT_TTL",
    "FetchPath",
    "FetchStats",
    "HashRing",
    "LeaderWindowRegistry",
    "HostRange",
    "MigrationPlan",
    "NaiveRouter",
    "Placement",
    "ProbeCache",
    "ProteusRouter",
    "ReadDatabase",
    "ReplicatedProteusRouter",
    "ReplicatedRetrievalEngine",
    "RetrievalEngine",
    "RetrievalOutcome",
    "Router",
    "RoutingEpochs",
    "StaticRouter",
    "WaitForLeader",
    "WriteBack",
    "Transition",
    "TransitionManager",
    "VirtualNode",
    "empirical_remap_fraction",
    "make_router",
    "migration_lower_bound",
    "naive_remap_fraction",
    "no_conflict_probability",
    "place_virtual_nodes",
    "plan_migration",
    "prefix_active",
    "remap_matrix",
    "scenario_routers",
    "theoretical_min_vnodes",
]
