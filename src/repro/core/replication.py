"""Fault tolerance via replicated hash rings (paper Section III-E).

Proteus keeps ``r`` replicas of every ``(key, data)`` pair by constructing
``r`` consistent-hashing rings with ``r`` different hash functions, all
sharing the *same* virtual-node placement.  A key is stored on server ``s_i``
if it falls into any of ``s_i``'s host ranges on any ring.  Replicas may
collide on one server; the probability that all ``r`` replicas land on
distinct servers (Eq. 3) is::

    P_nc = prod_{i=0}^{r-1} (n(t) - i) / n(t)

which approaches 1 for small ``r`` and large ``n``.

All lookups go through the backend's per-epoch compiled table
(:meth:`~repro.core.ring.RingBackend.compile`): one table serves every
replica ring because the rings differ only in the key hash, not in the
node placement.  Any :class:`~repro.core.ring.RingBackend` works — the
replica trick is orthogonal to the placement strategy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

from repro.bloom.hashing import Key, KeyHashes, ring_position
from repro.core.placement import Placement
from repro.core.ring import HashRing, RingBackend, make_backend
from repro.core.router import DEFAULT_RING_SIZE, Router
from repro.errors import ConfigurationError, RoutingError


@dataclass(frozen=True)
class ReadPlan:
    """One replicated read's routing decision, in probe order.

    Attributes:
        targets: surviving replica owners to probe, first to last.  With a
            load-aware pick the chosen server leads; otherwise strict
            replica-ring order.  Empty when every replica crashed (the
            engine reports the all-replicas-failed miss itself).
        primary: the ring-0 owner — the failover baseline (a read served
            by any other target counts as a failover), regardless of
            exclusions or load.
        chosen: the server the first probe goes to — the load-aware
            power-of-``d`` pick when load scores were supplied, else
            simply ``targets[0]``; ``None`` when no target survived.
    """

    targets: Tuple[int, ...]
    primary: int
    chosen: Optional[int] = None


def no_conflict_probability(replicas: int, num_active: int) -> float:
    """Eq. 3: probability that *replicas* independent placements are distinct."""
    if replicas < 1:
        raise ConfigurationError(f"replicas must be >= 1, got {replicas}")
    if num_active < 1:
        raise ConfigurationError(f"num_active must be >= 1, got {num_active}")
    probability = 1.0
    for i in range(replicas):
        probability *= max(0, num_active - i) / num_active
    return probability


class ReplicatedProteusRouter(Router):
    """Proteus routing with ``r`` replica rings sharing one placement.

    Ring ``i`` hashes keys with an independent hash function (``replica=i``
    salt); the virtual-node placement — and therefore the balance and
    minimal-migration guarantees — is identical on every ring.
    """

    def __init__(
        self,
        num_servers: int,
        replicas: int = 2,
        ring_size: int = DEFAULT_RING_SIZE,
        backend: Union[str, RingBackend] = "proteus",
    ) -> None:
        super().__init__(num_servers)
        if replicas < 1:
            raise ConfigurationError(f"replicas must be >= 1, got {replicas}")
        self.replicas = replicas
        if isinstance(backend, RingBackend):
            self.backend: RingBackend = backend
        else:
            self.backend = make_backend(backend, num_servers, ring_size)
        # Placement/ring are exposed for the vnode-backed strategies;
        # table-free backends (power) report None.
        self.placement: Optional[Placement] = getattr(self.backend, "placement", None)
        self._ring: Optional[HashRing] = getattr(self.backend, "ring", None)

    def ceding_servers(self, n_old: int, n_new: int) -> List[int]:
        return self.backend.ceding_servers(n_old, n_new)

    def replica_servers(
        self, key: Key, num_active: int, hashes: Optional[KeyHashes] = None
    ) -> List[int]:
        """Servers holding each replica of *key* (may contain duplicates).

        Index ``i`` of the result is the owner on ring ``i``.  Duplicates are
        *not* removed: Eq. 3 is about how often they occur, and callers that
        want distinct storage targets can dedupe.  Pass *hashes* to reuse
        already-computed replica bases.
        """
        self._check_active(num_active)
        table = self.backend.compile(num_active)
        size = self.backend.ring_size
        if hashes is not None:
            return [
                table.lookup(hashes.ring_position(size, replica=i))
                for i in range(self.replicas)
            ]
        return [
            table.lookup(ring_position(key, size, replica=i))
            for i in range(self.replicas)
        ]

    def distinct_replica_servers(
        self, key: Key, num_active: int, hashes: Optional[KeyHashes] = None
    ) -> List[int]:
        """Deduplicated replica owners, primary ring first."""
        seen: List[int] = []
        for server in self.replica_servers(key, num_active, hashes=hashes):
            if server not in seen:
                seen.append(server)
        return seen

    def route(self, key: Key, num_active: int) -> int:
        """Primary owner of *key* (ring 0) — the read target.

        Hashes only the primary ring, not all ``r`` replicas.
        """
        self._check_active(num_active)
        return self.backend.compile(num_active).lookup(
            ring_position(key, self.backend.ring_size, replica=0)
        )

    def route_hashed(self, hashes: KeyHashes, num_active: int) -> int:
        self._check_active(num_active)
        return self.backend.compile(num_active).lookup(
            hashes.ring_position(self.backend.ring_size, replica=0)
        )

    def route_many(self, keys: Sequence[Key], num_active: int) -> List[int]:
        from repro.bloom.hashing import ring_positions_many

        self._check_active(num_active)
        table = self.backend.compile(num_active)
        return table.lookup_many(
            ring_positions_many(keys, self.backend.ring_size, replica=0)
        ).tolist()

    def read_targets(
        self,
        key: Key,
        num_active: int,
        exclude: Sequence[int] = (),
        hashes: Optional[KeyHashes] = None,
    ) -> List[int]:
        """Replica owners excluding failed servers in *exclude*.

        Raises:
            RoutingError: every replica of *key* lives on an excluded server.
        """
        targets = [
            server
            for server in self.distinct_replica_servers(key, num_active, hashes=hashes)
            if server not in exclude
        ]
        if not targets:
            raise RoutingError(
                f"all {self.replicas} replicas of {key!r} are on failed servers"
            )
        return targets

    def read_plan(
        self,
        key: Key,
        num_active: int,
        exclude: Sequence[int] = (),
        hashes: Optional[KeyHashes] = None,
        loads=None,
        d_choices: int = 1,
        now: float = 0.0,
    ) -> ReadPlan:
        """One-pass read plan: surviving targets, primary owner, and —
        load-aware — the chosen first probe, as a :class:`ReadPlan`.

        The replicated retrieval engine needs both the failover probe order
        *and* the primary owner (for write-backs); computing them together
        hashes each replica ring once instead of twice.  Unlike
        :meth:`read_targets`, an empty target tuple is returned, not raised
        — the engine reports the all-replicas-failed miss itself.

        **Load-aware mode** (the DistCache power-of-two-choices read): pass
        *loads* (a :class:`~repro.core.hotkey.ServerLoadEWMA`) and
        ``d_choices > 1`` to sample the first ``d_choices`` surviving
        replica owners and probe the least loaded of them first (ties break
        on the lower server id, keeping the plan deterministic for equal
        loads).  Only the probe *order* changes — the target set and the
        primary are load-independent, so write-back fan-out and failover
        accounting are unaffected.
        """
        owners = self.replica_servers(key, num_active, hashes=hashes)
        targets: List[int] = []
        for server in owners:
            if server not in targets and server not in exclude:
                targets.append(server)
        chosen = targets[0] if targets else None
        if loads is not None and d_choices > 1 and len(targets) > 1:
            candidates = targets[:d_choices]
            chosen = min(
                candidates, key=lambda server: (loads.load(server, now), server)
            )
            if chosen != targets[0]:
                targets.remove(chosen)
                targets.insert(0, chosen)
        return ReadPlan(targets=tuple(targets), primary=owners[0], chosen=chosen)

    def empirical_conflict_rate(
        self, num_active: int, num_samples: int = 5000, seed: int = 11
    ) -> float:
        """Measured fraction of keys whose replicas collide (validates Eq. 3)."""
        import random

        rng = random.Random(seed)
        conflicts = 0
        for _ in range(num_samples):
            key = f"replica-sample:{rng.getrandbits(64):016x}"
            owners = self.replica_servers(key, num_active)
            if len(set(owners)) < len(owners):
                conflicts += 1
        return conflicts / num_samples
