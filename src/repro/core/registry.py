"""Typed name -> factory registries for pluggable components.

Ring backends (:data:`~repro.core.ring.RING_BACKENDS`) and router
scenarios (:data:`~repro.core.router.ROUTER_SCENARIOS`) both grew ad hoc
``make_*`` factories with hand-rolled name checks; every caller —
``make_backend``, ``make_router``, ``ScenarioSpec.proteus``,
``ExperimentConfig``, the CLI's ``--ring-backend`` flag — re-implemented
the "is this a valid name?" test with its own error text.  This module is
the single mechanism behind all of them: one :class:`Registry` per
component kind, one normalisation rule (case-insensitive, stripped), and
one error message listing the valid names.

The registry instances live next to the classes they construct (so this
module imports nothing heavy); importing them *from here* is supported
for discoverability::

    from repro.core.registry import RING_BACKENDS, ROUTER_SCENARIOS

CLI help and config validation derive from :attr:`Registry.names`, so
registering a new backend in one place updates the factory, the error
message, ``--ring-backend``'s choices, and the experiment-config check
together.
"""

from __future__ import annotations

from typing import Callable, Dict, Generic, Iterator, Optional, Tuple, TypeVar

from repro.errors import ConfigurationError

__all__ = ["Registry", "RING_BACKENDS", "ROUTER_SCENARIOS"]

T = TypeVar("T")


class Registry(Generic[T]):
    """A name -> factory map with uniform lookup errors.

    Args:
        kind: human-readable component kind ("ring backend", "scenario");
            appears in every unknown-name error.

    Names are normalised case-insensitively (``"Proteus"`` and
    ``"proteus"`` select the same factory) and registration order is
    preserved — :attr:`names` lists factories in the order they were
    registered, which is the order CLI choices and error messages show.
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._factories: Dict[str, Callable[..., T]] = {}

    # ------------------------------------------------------------ mutation

    def register(
        self, name: str, factory: Optional[Callable[..., T]] = None
    ):
        """Register *factory* under *name*.

        Usable directly — ``registry.register("proteus", ProteusBackend)``
        — or as a decorator::

            @registry.register("proteus")
            class ProteusBackend: ...
        """
        if factory is None:
            def decorator(fn: Callable[..., T]) -> Callable[..., T]:
                self.register(name, fn)
                return fn

            return decorator
        key = self._normalize(name)
        if key in self._factories:
            raise ConfigurationError(
                f"duplicate {self.kind} registration: {key!r}"
            )
        self._factories[key] = factory
        return factory

    # ------------------------------------------------------------- lookup

    @staticmethod
    def _normalize(name: str) -> str:
        return name.strip().lower()

    def unknown(self, name: object) -> ConfigurationError:
        """The uniform error for an unrecognised name (not raised here)."""
        return ConfigurationError(
            f"unknown {self.kind} {name!r} "
            f"(expected one of {', '.join(self.names)})"
        )

    def check(self, name: str) -> str:
        """Validate *name*; returns the normalised form or raises."""
        key = self._normalize(name)
        if key not in self._factories:
            raise self.unknown(name)
        return key

    def factory(self, name: str) -> Callable[..., T]:
        """The registered factory for *name* (raises the uniform error)."""
        return self._factories[self.check(name)]

    def create(self, name: str, *args, **kwargs) -> T:
        """Instantiate the component registered under *name*."""
        return self.factory(name)(*args, **kwargs)

    # ------------------------------------------------------- introspection

    @property
    def names(self) -> Tuple[str, ...]:
        """Registered names, in registration order (CLI/choices order)."""
        return tuple(self._factories)

    def help_text(self, prefix: str) -> str:
        """A CLI ``help=`` string listing the valid names."""
        return f"{prefix} ({', '.join(self.names)})"

    def __contains__(self, name: object) -> bool:
        return (
            isinstance(name, str)
            and self._normalize(name) in self._factories
        )

    def __iter__(self) -> Iterator[str]:
        return iter(self._factories)

    def __len__(self) -> int:
        return len(self._factories)

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return f"Registry({self.kind!r}, names={list(self._factories)})"


def __getattr__(name: str):
    # The shared instances live beside the classes they construct; lazy
    # re-export here keeps this module import-light and cycle-free.
    if name == "RING_BACKENDS":
        from repro.core.ring import RING_BACKENDS

        return RING_BACKENDS
    if name == "ROUTER_SCENARIOS":
        from repro.core.router import ROUTER_SCENARIOS

        return ROUTER_SCENARIOS
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
