"""Algorithm 1 — deterministic virtual-node placement (paper Section III).

Given a fixed provisioning order ``s_1 .. s_N`` over a key space of size
``K``, the algorithm assigns host ranges so that:

* exactly ``N(N-1)/2 + 1`` virtual nodes exist — the Theorem 1 lower bound;
* for **every** active prefix ``{s_1..s_n}``, each active server owns exactly
  ``K/n`` of the key space (the Balance Condition);
* a transition ``n -> n'`` remaps exactly ``|n - n'| / max(n, n')`` of the
  key space — the Section II lower bound.

Construction (paper Algorithm 1): ``s_1`` starts with one virtual node
covering the whole ring.  Each subsequent ``s_i`` places ``i-1`` virtual
nodes, the ``j``-th of which *borrows* a host range of length ``K/(i(i-1))``
from the front of some feasible range of ``s_j`` (feasible = strictly longer
than the amount borrowed).  Ranges are exact :class:`fractions.Fraction`
values, so the balance property holds *exactly*, not just within float error.

Server ids here are 0-based (``0..N-1``); the paper's ``s_i`` is server
``i-1``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import List

from repro.core.ring import HashRing, prefix_active
from repro.errors import ConfigurationError, PlacementError


def theoretical_min_vnodes(num_servers: int) -> int:
    """Theorem 1: at least ``N(N-1)/2 + 1`` virtual nodes satisfy BC."""
    if num_servers < 1:
        raise ConfigurationError(f"num_servers must be >= 1, got {num_servers}")
    return num_servers * (num_servers - 1) // 2 + 1


@dataclass
class HostRange:
    """A contiguous host range ``[start, start+length)`` owned by *server*.

    The owning virtual node sits at ring position ``start + length``: its
    host range is everything between it and its direct predecessor.
    """

    start: Fraction
    length: Fraction
    server: int

    @property
    def end(self) -> Fraction:
        """One past the last position of the range (== the vnode position)."""
        return self.start + self.length


@dataclass
class Placement:
    """The output of Algorithm 1 for ``num_servers`` over key space ``ring_size``."""

    num_servers: int
    ring_size: int
    ranges: List[HostRange] = field(default_factory=list)

    @property
    def num_vnodes(self) -> int:
        """Total virtual nodes placed (== Theorem 1 bound for Algorithm 1)."""
        return len(self.ranges)

    def ranges_of(self, server: int) -> List[HostRange]:
        """Host ranges owned by *server* when all ``N`` servers are active."""
        return [r for r in self.ranges if r.server == server]

    def build_ring(self) -> HashRing:
        """Materialize the placement as a :class:`HashRing`.

        Virtual-node positions are the range *ends*; the lookup convention of
        :class:`HashRing` (owner of ``[pred, p)`` is the vnode at ``p``) then
        reproduces the host ranges exactly, and powering servers off in
        reverse provisioning order drains each borrowed range back to its
        lender — the "final successor" relation of Section III-B.
        """
        ring = HashRing(self.ring_size)
        for rng in self.ranges:
            ring.add(rng.end % self.ring_size, rng.server)
        return ring

    def owned_fraction(self, server: int, num_active: int) -> Fraction:
        """Exact fraction of the key space *server* owns with ``num_active`` on."""
        ring = self.build_ring()
        owned = ring.owned_lengths(prefix_active(num_active))
        return Fraction(owned.get(server, 0)) / self.ring_size

    def verify_balance(self) -> None:
        """Check BC exactly for every active prefix; raise on violation.

        For each ``n`` in ``1..N`` every active server must own exactly
        ``K/n``.  This is the executable statement of the paper's induction
        proof (Section III-D).
        """
        ring = self.build_ring()
        target_total = Fraction(self.ring_size)
        for num_active in range(1, self.num_servers + 1):
            owned = ring.owned_lengths(prefix_active(num_active))
            expected = target_total / num_active
            for server in range(num_active):
                got = Fraction(owned.get(server, 0))
                if got != expected:
                    raise PlacementError(
                        f"balance violated at n={num_active}: server {server} "
                        f"owns {got}, expected {expected}"
                    )


def place_virtual_nodes(num_servers: int, ring_size: int) -> Placement:
    """Run Algorithm 1 and return the resulting placement.

    Args:
        num_servers: ``N``, the total number of physical cache servers.
        ring_size: ``K``, the key-space (ring) size; any positive integer —
            arithmetic is exact rationals so divisibility is not required.

    Raises:
        PlacementError: if no feasible lender range exists (cannot happen for
            valid inputs, per the paper's proof — treated as an internal
            invariant violation).
    """
    if num_servers < 1:
        raise ConfigurationError(f"num_servers must be >= 1, got {num_servers}")
    if ring_size < 1:
        raise ConfigurationError(f"ring_size must be >= 1, got {ring_size}")

    key_space = Fraction(ring_size)
    # R[j] = host ranges currently owned by server j; mutated as later
    # servers borrow from their fronts.
    owned: List[List[HostRange]] = [[] for _ in range(num_servers)]
    owned[0].append(HostRange(Fraction(0), key_space, 0))

    for i in range(2, num_servers + 1):  # paper's s_i, i.e. server i-1
        borrower = i - 1
        slice_len = key_space / (i * (i - 1))
        for j in range(1, i):  # borrow once from each s_j, j < i
            lender = j - 1
            lender_ranges = owned[lender]
            for rng in lender_ranges:
                if rng.length > slice_len:
                    borrowed = HostRange(rng.start, slice_len, borrower)
                    rng.start += slice_len
                    rng.length -= slice_len
                    owned[borrower].append(borrowed)
                    break
            else:
                raise PlacementError(
                    f"no feasible range of server {lender} to lend "
                    f"{slice_len} to server {borrower}"
                )

    ranges = [rng for server_ranges in owned for rng in server_ranges]
    ranges.sort(key=lambda r: r.start)
    return Placement(num_servers=num_servers, ring_size=ring_size, ranges=ranges)


def fast_virtual_positions(num_servers: int, ring_size: int):
    """Algorithm 1 in scaled-integer arithmetic — bench-scale fleets.

    The exact construction's :class:`~fractions.Fraction` state normalizes
    (gcd) after every borrow, and the denominators grow super-linearly
    with ``N``; beyond ~1000 servers the build takes hours.  This variant
    runs the *same* borrow schedule with every quantity expressed as an
    integer multiple of the unit ``ring_size / lcm(1..N)``: the full ring
    is ``L = lcm(1..N)`` units and step ``i``'s slice is exactly
    ``L // (i * (i - 1))`` units (``i`` and ``i-1`` both divide ``L``).
    Feasibility (``length > slice``) is then an exact integer comparison —
    bit-identical decisions to :func:`place_virtual_nodes`, which matters
    because Algorithm 1 produces near-ties as small as a few parts per
    billion that float64 simulation misclassifies.  ``L`` is only ~6000
    bits at ``N = 4096`` and no gcd is ever taken, so the arithmetic stays
    cheap.

    Two observations keep the bookkeeping linear in the vnode count:
    a host range's *end* (== its vnode position) never changes after
    creation — borrowing advances the lender's ``start`` and shrinks its
    ``length``, leaving ``end`` fixed — so positions are recorded once at
    creation; and only ``(start, length)`` unit pairs are tracked for the
    feasibility scan.

    Returns ``(positions, servers)`` int64 arrays sorted by position, with
    positions converted by the same ``ceil`` rule
    :class:`~repro.core.ring.CompiledRingTable` applies to exact rational
    vnode positions — so a table built from these arrays is bound-for-bound
    the table :meth:`HashRing.compiled_for` compiles from the exact
    placement (for integer queries, ``position > k  iff  ceil(position) >
    k``).

    Use :func:`place_virtual_nodes` whenever it is affordable — it is the
    construction the test suites pin, with exact rational positions.
    """
    import math

    import numpy as np

    if num_servers < 1:
        raise ConfigurationError(f"num_servers must be >= 1, got {num_servers}")
    if ring_size < 1:
        raise ConfigurationError(f"ring_size must be >= 1, got {ring_size}")

    scale = 1
    for value in range(2, num_servers + 1):
        scale = scale * value // math.gcd(scale, value)

    # Per-server parallel state in units of ring_size/L: exact integer
    # ``starts``/``lengths`` (the authoritative values) plus a numpy
    # float64 mirror of each lender's lengths as *fractions of the ring*
    # (``length / scale`` — raw unit counts overflow float range once
    # ``L`` passes ~1000 bits).  The feasibility scan is the hot loop —
    # its total iteration count grows ~N^3/17 (4e9 at N=4096), hopeless
    # in pure Python — so each borrow finds the leftmost *possibly
    # feasible* range with a vectorized ``argmax`` over the float mirror
    # and confirms the candidate with the exact integer comparison.  The
    # mirrors are refreshed from the exact values after every borrow (one
    # rounding, 2^-53 relative), so a float 1e-12 below the slice is
    # provably infeasible: the screen can only err by *admitting* a
    # near-tie candidate, which the exact check then rejects.  Decisions
    # are therefore bit-identical to the all-integer scan.
    starts: List[List[int]] = [[] for _ in range(num_servers)]
    lengths: List[List[int]] = [[] for _ in range(num_servers)]
    mirrors: List[np.ndarray] = [
        np.empty(16, dtype=np.float64) for _ in range(num_servers)
    ]
    counts = [0] * num_servers
    ends: List[int] = [scale]
    owners_of_ends: List[int] = [0]
    starts[0].append(0)
    lengths[0].append(scale)
    mirrors[0][0] = 1.0
    counts[0] = 1

    for i in range(2, num_servers + 1):  # paper's s_i, i.e. server i-1
        borrower = i - 1
        slice_units = scale // (i * (i - 1))
        slice_f = slice_units / scale
        limit = slice_f * (1.0 - 1e-12)  # possibly-feasible threshold
        borrower_starts = starts[borrower]
        borrower_lengths = lengths[borrower]
        for j in range(1, i):  # borrow once from each s_j, j < i
            lender = j - 1
            lender_starts = starts[lender]
            lender_lengths = lengths[lender]
            view = mirrors[lender][: counts[lender]]
            idx = int((view > limit).argmax())
            if not view[idx] > limit:
                raise PlacementError(
                    f"no feasible range of server {lender} to lend "
                    f"{slice_units}/{scale} of the ring to server {borrower}"
                )
            while not lender_lengths[idx] > slice_units:  # exact near-tie
                rest = view[idx + 1:]
                nxt = int((rest > limit).argmax()) if rest.size else 0
                cand = idx + 1 + nxt
                if cand >= view.size or not view[cand] > limit:
                    raise PlacementError(
                        f"no feasible range of server {lender} to lend "
                        f"{slice_units}/{scale} of the ring to server "
                        f"{borrower}"
                    )
                idx = cand
            front = lender_starts[idx]
            ends.append(front + slice_units)
            owners_of_ends.append(borrower)
            slot = counts[borrower]
            if slot == mirrors[borrower].size:
                grown = np.empty(2 * slot, dtype=np.float64)
                grown[:slot] = mirrors[borrower]
                mirrors[borrower] = grown
            mirrors[borrower][slot] = slice_f
            counts[borrower] = slot + 1
            borrower_starts.append(front)
            borrower_lengths.append(slice_units)
            remainder = lender_lengths[idx] - slice_units
            lender_starts[idx] = front + slice_units
            lender_lengths[idx] = remainder
            mirrors[lender][idx] = remainder / scale

    # position = ceil(end_units * ring_size / L) — the CompiledRingTable
    # bound of the exact rational position end_units * ring_size / L.
    scale_m1 = scale - 1
    positions = np.fromiter(
        (
            ((end * ring_size + scale_m1) // scale) % ring_size
            for end in ends
        ),
        dtype=np.int64,
        count=len(ends),
    )
    servers = np.asarray(owners_of_ends, dtype=np.int64)
    order = np.argsort(positions, kind="stable")
    if len(ends) > 1:
        sorted_pos = positions[order]
        dup = sorted_pos[1:] == sorted_pos[:-1]
        if bool(dup.any()):
            # Ceil collisions (birthday ties once the vnode count nears
            # sqrt(ring_size)): reorder each duplicate run by the exact
            # scaled ends, as the exact table does.  Runs are tiny, so
            # fixing them locally beats re-keying the whole sort with
            # bignum tuples.
            dup_idx = np.flatnonzero(dup)
            run_start = int(dup_idx[0])
            prev = run_start
            runs = []
            for d in dup_idx[1:].tolist():
                if d != prev + 1:
                    runs.append((run_start, prev + 2))
                    run_start = d
                prev = d
            runs.append((run_start, prev + 2))
            for lo, hi in runs:  # run covers order[lo:hi]
                segment = sorted(order[lo:hi].tolist(), key=ends.__getitem__)
                order[lo:hi] = segment
    return positions[order], servers[order]
