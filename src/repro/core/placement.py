"""Algorithm 1 — deterministic virtual-node placement (paper Section III).

Given a fixed provisioning order ``s_1 .. s_N`` over a key space of size
``K``, the algorithm assigns host ranges so that:

* exactly ``N(N-1)/2 + 1`` virtual nodes exist — the Theorem 1 lower bound;
* for **every** active prefix ``{s_1..s_n}``, each active server owns exactly
  ``K/n`` of the key space (the Balance Condition);
* a transition ``n -> n'`` remaps exactly ``|n - n'| / max(n, n')`` of the
  key space — the Section II lower bound.

Construction (paper Algorithm 1): ``s_1`` starts with one virtual node
covering the whole ring.  Each subsequent ``s_i`` places ``i-1`` virtual
nodes, the ``j``-th of which *borrows* a host range of length ``K/(i(i-1))``
from the front of some feasible range of ``s_j`` (feasible = strictly longer
than the amount borrowed).  Ranges are exact :class:`fractions.Fraction`
values, so the balance property holds *exactly*, not just within float error.

Server ids here are 0-based (``0..N-1``); the paper's ``s_i`` is server
``i-1``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import List

from repro.core.ring import HashRing, prefix_active
from repro.errors import ConfigurationError, PlacementError


def theoretical_min_vnodes(num_servers: int) -> int:
    """Theorem 1: at least ``N(N-1)/2 + 1`` virtual nodes satisfy BC."""
    if num_servers < 1:
        raise ConfigurationError(f"num_servers must be >= 1, got {num_servers}")
    return num_servers * (num_servers - 1) // 2 + 1


@dataclass
class HostRange:
    """A contiguous host range ``[start, start+length)`` owned by *server*.

    The owning virtual node sits at ring position ``start + length``: its
    host range is everything between it and its direct predecessor.
    """

    start: Fraction
    length: Fraction
    server: int

    @property
    def end(self) -> Fraction:
        """One past the last position of the range (== the vnode position)."""
        return self.start + self.length


@dataclass
class Placement:
    """The output of Algorithm 1 for ``num_servers`` over key space ``ring_size``."""

    num_servers: int
    ring_size: int
    ranges: List[HostRange] = field(default_factory=list)

    @property
    def num_vnodes(self) -> int:
        """Total virtual nodes placed (== Theorem 1 bound for Algorithm 1)."""
        return len(self.ranges)

    def ranges_of(self, server: int) -> List[HostRange]:
        """Host ranges owned by *server* when all ``N`` servers are active."""
        return [r for r in self.ranges if r.server == server]

    def build_ring(self) -> HashRing:
        """Materialize the placement as a :class:`HashRing`.

        Virtual-node positions are the range *ends*; the lookup convention of
        :class:`HashRing` (owner of ``[pred, p)`` is the vnode at ``p``) then
        reproduces the host ranges exactly, and powering servers off in
        reverse provisioning order drains each borrowed range back to its
        lender — the "final successor" relation of Section III-B.
        """
        ring = HashRing(self.ring_size)
        for rng in self.ranges:
            ring.add(rng.end % self.ring_size, rng.server)
        return ring

    def owned_fraction(self, server: int, num_active: int) -> Fraction:
        """Exact fraction of the key space *server* owns with ``num_active`` on."""
        ring = self.build_ring()
        owned = ring.owned_lengths(prefix_active(num_active))
        return Fraction(owned.get(server, 0)) / self.ring_size

    def verify_balance(self) -> None:
        """Check BC exactly for every active prefix; raise on violation.

        For each ``n`` in ``1..N`` every active server must own exactly
        ``K/n``.  This is the executable statement of the paper's induction
        proof (Section III-D).
        """
        ring = self.build_ring()
        target_total = Fraction(self.ring_size)
        for num_active in range(1, self.num_servers + 1):
            owned = ring.owned_lengths(prefix_active(num_active))
            expected = target_total / num_active
            for server in range(num_active):
                got = Fraction(owned.get(server, 0))
                if got != expected:
                    raise PlacementError(
                        f"balance violated at n={num_active}: server {server} "
                        f"owns {got}, expected {expected}"
                    )


def place_virtual_nodes(num_servers: int, ring_size: int) -> Placement:
    """Run Algorithm 1 and return the resulting placement.

    Args:
        num_servers: ``N``, the total number of physical cache servers.
        ring_size: ``K``, the key-space (ring) size; any positive integer —
            arithmetic is exact rationals so divisibility is not required.

    Raises:
        PlacementError: if no feasible lender range exists (cannot happen for
            valid inputs, per the paper's proof — treated as an internal
            invariant violation).
    """
    if num_servers < 1:
        raise ConfigurationError(f"num_servers must be >= 1, got {num_servers}")
    if ring_size < 1:
        raise ConfigurationError(f"ring_size must be >= 1, got {ring_size}")

    key_space = Fraction(ring_size)
    # R[j] = host ranges currently owned by server j; mutated as later
    # servers borrow from their fronts.
    owned: List[List[HostRange]] = [[] for _ in range(num_servers)]
    owned[0].append(HostRange(Fraction(0), key_space, 0))

    for i in range(2, num_servers + 1):  # paper's s_i, i.e. server i-1
        borrower = i - 1
        slice_len = key_space / (i * (i - 1))
        for j in range(1, i):  # borrow once from each s_j, j < i
            lender = j - 1
            lender_ranges = owned[lender]
            for rng in lender_ranges:
                if rng.length > slice_len:
                    borrowed = HostRange(rng.start, slice_len, borrower)
                    rng.start += slice_len
                    rng.length -= slice_len
                    owned[borrower].append(borrowed)
                    break
            else:
                raise PlacementError(
                    f"no feasible range of server {lender} to lend "
                    f"{slice_len} to server {borrower}"
                )

    ranges = [rng for server_ranges in owned for rng in server_ranges]
    ranges.sort(key=lambda r: r.start)
    return Placement(num_servers=num_servers, ring_size=ring_size, ranges=ranges)
