"""Migration analysis — how many keys a provisioning transition remaps.

The Section II objective: when the active count changes ``n -> n'``, at most
``|n - n'| / max(n, n')`` of the in-cache data should be remapped.  Proteus
meets this bound with equality (it is also the information-theoretic minimum:
the servers being powered on/off own exactly that fraction).  The Naive
modulo scheme remaps ``1 - 1/max(n, n')``-ish fractions — the Reddit incident.

This module computes remap fractions both analytically (for Proteus) and
empirically (for any :class:`~repro.core.router.Router`, by sampling keys),
and builds explicit migration plans: which (source, destination) server pairs
exchange keys during a transition — the input to the smooth-transition
coordinator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Sequence, Tuple

from repro.bloom.hashing import Key
from repro.core.metrics import remap_fraction
from repro.core.router import Router
from repro.errors import ConfigurationError


def migration_lower_bound(n_old: int, n_new: int) -> Fraction:
    """Section II: the minimum remappable fraction, ``|Δn| / max(n, n')``."""
    if n_old < 1 or n_new < 1:
        raise ConfigurationError("active counts must be >= 1")
    return Fraction(abs(n_new - n_old), max(n_old, n_new))


def naive_remap_fraction(n_old: int, n_new: int) -> Fraction:
    """Expected remap fraction of ``hash mod n``: ``1 - gcd-preserved overlap``.

    A key keeps its server iff ``hash mod n_old == hash mod n_new``.  For a
    uniform 64-bit hash this happens for exactly one residue pair per
    ``lcm(n_old, n_new)`` values, giving survival probability
    ``min(n_old, n_new) * gcd / (n_old * n_new)`` — e.g. ``n -> n+1`` keeps
    only ``~1/(n+1)`` of keys (the paper's ``n/(n+1)`` remap claim).
    """
    import math

    if n_old < 1 or n_new < 1:
        raise ConfigurationError("active counts must be >= 1")
    if n_old == n_new:
        return Fraction(0)
    gcd = math.gcd(n_old, n_new)
    lcm = n_old * n_new // gcd
    # Within one lcm-length block of hash values, a value survives iff its
    # residue r (< lcm) satisfies r mod n_old == r mod n_new, i.e. both
    # residues equal r mod gcd... counting: survivors are r < min(n_old,n_new)
    # stepping by lcm? Exact count: r mod n_old == r mod n_new  <=>
    # (n_old - n_new) | contribution — survivors are r in [0, lcm) with
    # r mod n_old == r mod n_new; these are exactly r in [0, min(n_old, n_new))
    # repeated every lcm when gcd == min? For the general case we count
    # directly (lcm is small for realistic n).
    survivors = sum(1 for r in range(lcm) if r % n_old == r % n_new)
    return Fraction(lcm - survivors, lcm)


@dataclass
class MigrationPlan:
    """Keys that change servers in a transition ``n_old -> n_new``.

    Attributes:
        n_old: active count before the transition.
        n_new: active count after.
        moves: mapping ``(source_server, dest_server) -> keys`` to migrate.
        stationary: count of sampled keys that did not move.
    """

    n_old: int
    n_new: int
    moves: Dict[Tuple[int, int], List[Key]] = field(default_factory=dict)
    stationary: int = 0

    @property
    def moved(self) -> int:
        """Number of sampled keys that changed servers."""
        return sum(len(keys) for keys in self.moves.values())

    @property
    def remap_fraction(self) -> float:
        """Fraction of sampled keys remapped."""
        total = self.moved + self.stationary
        return self.moved / total if total else 0.0

    def sources(self) -> List[int]:
        """Distinct servers losing keys."""
        return sorted({src for src, _ in self.moves})

    def destinations(self) -> List[int]:
        """Distinct servers gaining keys."""
        return sorted({dst for _, dst in self.moves})


def plan_migration(
    router: Router, keys: Sequence[Key], n_old: int, n_new: int
) -> MigrationPlan:
    """Build the explicit migration plan for *keys* under *router*.

    Routes every key under both active counts and records the movers.  This
    is what the provisioning actuator hands to the smooth-transition
    coordinator: the set of ``(old owner, new owner)`` pairs tells which
    digests web servers must hold during the drain window.
    """
    plan = MigrationPlan(n_old=n_old, n_new=n_new)
    for key in keys:
        src = router.route(key, n_old)
        dst = router.route(key, n_new)
        if src == dst:
            plan.stationary += 1
        else:
            plan.moves.setdefault((src, dst), []).append(key)
    return plan


def empirical_remap_fraction(
    router: Router, n_old: int, n_new: int, num_samples: int = 20000, seed: int = 7
) -> float:
    """Measure the remap fraction of *router* over random sampled keys.

    A thin wrapper over the shared :func:`repro.core.metrics.remap_fraction`
    using the router's vectorized batch path; the sampled key stream is
    seed-stable across releases.
    """
    import random

    rng = random.Random(seed)
    keys = [f"sample:{rng.getrandbits(64):016x}" for _ in range(num_samples)]
    return remap_fraction(
        router.route_many(keys, n_old), router.route_many(keys, n_new)
    )


def remap_matrix(
    router: Router, max_active: int, num_samples: int = 5000, seed: int = 7
) -> List[List[float]]:
    """Remap fractions for every single-step transition ``n -> n±1``.

    Returns a matrix ``M`` with ``M[n-1][0]`` the fraction for ``n -> n+1``
    (or 0.0 at the top) and ``M[n-1][1]`` for ``n -> n-1`` (or 0.0 at the
    bottom); used by the migration ablation bench.
    """
    matrix: List[List[float]] = []
    for n in range(1, max_active + 1):
        up = (
            empirical_remap_fraction(router, n, n + 1, num_samples, seed)
            if n < max_active
            else 0.0
        )
        down = (
            empirical_remap_fraction(router, n, n - 1, num_samples, seed)
            if n > 1
            else 0.0
        )
        matrix.append([up, down])
    return matrix
