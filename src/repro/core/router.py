"""Request-routing strategies — the four scenarios of paper Table II.

Every router answers one question: *which cache server serves this key when
``n`` of the ``N`` servers are active?*  Routers are deterministic and
self-contained so that independent web servers, given the same configuration,
make identical decisions (paper Section I, objective 3).

==================  =========================  ===============================
Scenario            Server provisioning        Workload distribution
==================  =========================  ===============================
``Static``          all servers always on      simple hash with modulo
``Naive``           dynamically tuned          simple hash with modulo
``Consistent``      dynamically tuned          consistent hashing, random
                                               virtual nodes (O(log n) per
                                               server, or n^2/2 total)
``Proteus``         dynamically tuned          Algorithm 1 placement
==================  =========================  ===============================

Objective 3 also demands the decision be *efficient* — it runs on every web
request — so the ring-based routers route through a pluggable
:class:`~repro.core.ring.RingBackend`: the placement strategy is resolved
once per ``num_active`` epoch into a flat table, ``route()`` is hash + one
O(1)-ish lookup with zero Python callbacks, and :meth:`Router.route_many`
answers a whole key batch with one vectorized pass.  The ``proteus``
backend routes through :meth:`~repro.core.ring.HashRing.compiled_for`, so
its decisions are bit-identical to the uncompiled ``ring.lookup`` path;
the ``multiprobe`` and ``power`` backends trade the Algorithm 1 guarantees
for O(n) / O(1) table memory (see :mod:`repro.core.ring`).
"""

from __future__ import annotations

import math
import random
from abc import ABC, abstractmethod
from typing import List, Optional, Sequence

from repro.bloom.hashing import (
    Key,
    KeyHashes,
    ring_position,
    ring_positions_many,
    stable_hash64,
    stable_hash64_many,
)
from repro.core.placement import Placement
from repro.core.registry import Registry
from repro.core.ring import (
    BACKEND_NAMES,
    DEFAULT_PROBES,
    DEFAULT_RING_SIZE,
    HashRing,
    MultiProbeBackend,
    PowerBackend,
    ProteusBackend,
    RingBackend,
    VirtualNode,
    VnodeBackend,
    make_backend,
)
from repro.errors import ConfigurationError, RoutingError


class Router(ABC):
    """Maps keys to cache-server ids (0-based, in provisioning order)."""

    def __init__(self, num_servers: int) -> None:
        if num_servers < 1:
            raise ConfigurationError(f"num_servers must be >= 1, got {num_servers}")
        self.num_servers = num_servers

    def _check_active(self, num_active: int) -> None:
        if not 1 <= num_active <= self.num_servers:
            raise RoutingError(
                f"num_active must be in [1, {self.num_servers}], got {num_active}"
            )

    @abstractmethod
    def route(self, key: Key, num_active: int) -> int:
        """Return the server id (< ``num_active`` unless Static) serving *key*."""

    def route_hashed(self, hashes: KeyHashes, num_active: int) -> int:
        """:meth:`route` reusing an already-hashed key.

        The retrieval engine routes the same key under two epochs per fetch;
        passing one :class:`~repro.bloom.hashing.KeyHashes` makes the second
        route a pure table lookup.  Decisions are identical to
        ``route(hashes.key, num_active)``.
        """
        return self.route(hashes.key, num_active)

    def route_many(self, keys: Sequence[Key], num_active: int) -> List[int]:
        """Route a whole key batch; element ``i`` is ``route(keys[i], n)``.

        Subclasses vectorize this (one hash pass + one ``searchsorted``);
        the base implementation is the sequential loop.
        """
        return [self.route(key, num_active) for key in keys]

    def ceding_servers(self, n_old: int, n_new: int) -> List[int]:
        """Old-mapping owners that may lose keys in ``n_old -> n_new``.

        The digest-broadcast set for a smooth transition: a digest is
        needed from every server that might be the old owner of a
        remapped key.  The conservative default — every old owner — is
        correct for any router; backend-aware routers narrow it via
        :meth:`RingBackend.ceding_servers`.
        """
        self._check_active(n_old)
        self._check_active(n_new)
        return list(range(n_old))

    @property
    def name(self) -> str:
        """Short scenario name used in benchmark tables."""
        return type(self).__name__.replace("Router", "")


class StaticRouter(Router):
    """Table II "Static": all ``N`` servers on, ``hash(key) mod N``.

    Ignores ``num_active`` — this scenario never powers servers down, so it
    is the no-savings / no-spike baseline.
    """

    def ceding_servers(self, n_old: int, n_new: int) -> List[int]:
        return []  # routing ignores num_active: no key ever moves

    def route(self, key: Key, num_active: int) -> int:
        return stable_hash64(key) % self.num_servers

    def route_hashed(self, hashes: KeyHashes, num_active: int) -> int:
        return hashes.base64 % self.num_servers

    def route_many(self, keys: Sequence[Key], num_active: int) -> List[int]:
        import numpy as np

        return (stable_hash64_many(keys) % np.uint64(self.num_servers)).tolist()


class NaiveRouter(Router):
    """Table II "Naive": ``hash(key) mod n(t)`` over the active servers.

    Rebalancing is perfect inside a slot, but a change ``n -> n+1`` remaps
    ``n/(n+1)`` of all keys (the Reddit incident of Section I), flooding the
    database tier on every transition.
    """

    def route(self, key: Key, num_active: int) -> int:
        self._check_active(num_active)
        return stable_hash64(key) % num_active

    def route_hashed(self, hashes: KeyHashes, num_active: int) -> int:
        self._check_active(num_active)
        return hashes.base64 % num_active

    def route_many(self, keys: Sequence[Key], num_active: int) -> List[int]:
        import numpy as np

        self._check_active(num_active)
        return (stable_hash64_many(keys) % np.uint64(num_active)).tolist()


class RingRouter(Router):
    """Shared fast path of the backend-based routers.

    Subclasses populate ``self.backend`` (a
    :class:`~repro.core.ring.RingBackend`); routing is one blake2b key
    position plus the backend's per-epoch compiled lookup — a bisection
    for the vnode backends, ``k`` probes for multi-probe, O(1) expected
    draws for power — or one vectorized pass per batch.  Vnode-backed
    routers additionally expose ``self.ring`` for placement inspection.
    """

    backend: RingBackend
    ring: Optional[HashRing]

    def route(self, key: Key, num_active: int) -> int:
        self._check_active(num_active)
        backend = self.backend
        return backend.compile(num_active).lookup(
            ring_position(key, backend.ring_size)
        )

    def route_hashed(self, hashes: KeyHashes, num_active: int) -> int:
        self._check_active(num_active)
        backend = self.backend
        return backend.compile(num_active).lookup(
            hashes.ring_position(backend.ring_size)
        )

    def route_many(self, keys: Sequence[Key], num_active: int) -> List[int]:
        self._check_active(num_active)
        backend = self.backend
        table = backend.compile(num_active)
        return table.lookup_many(
            ring_positions_many(keys, backend.ring_size)
        ).tolist()

    def ceding_servers(self, n_old: int, n_new: int) -> List[int]:
        return self.backend.ceding_servers(n_old, n_new)

    def expected_remap_fraction(self, n_old: int, n_new: int) -> Optional[float]:
        """Backend remap metadata (see
        :meth:`~repro.core.ring.RingBackend.expected_remap_fraction`)."""
        return self.backend.expected_remap_fraction(n_old, n_new)


class ConsistentRouter(RingRouter):
    """Table II "Consistent": classic consistent hashing, random virtual nodes.

    Two variants from the paper's evaluation (Fig. 5 / Fig. 9):

    * ``vnodes_per_server=ceil(log2 N)`` — the common O(log n) deployment;
    * ``total_vnodes=N*N//2`` — the n^2/2 variant the paper uses to give the
      baseline the same vnode budget as Proteus.

    Virtual-node positions are drawn from a seeded PRNG shared by all web
    servers (the paper seeds ``java.util.Random`` with 0 on every web server
    for the same reason).
    """

    def __init__(
        self,
        num_servers: int,
        vnodes_per_server: Optional[int] = None,
        total_vnodes: Optional[int] = None,
        seed: int = 0,
        ring_size: int = DEFAULT_RING_SIZE,
    ) -> None:
        super().__init__(num_servers)
        if vnodes_per_server is not None and total_vnodes is not None:
            raise ConfigurationError(
                "pass vnodes_per_server or total_vnodes, not both"
            )
        if vnodes_per_server is None and total_vnodes is None:
            vnodes_per_server = max(1, math.ceil(math.log2(max(2, num_servers))))
        self.ring = HashRing(ring_size)
        rng = random.Random(seed)
        if vnodes_per_server is not None:
            if vnodes_per_server < 1:
                raise ConfigurationError(
                    f"vnodes_per_server must be >= 1, got {vnodes_per_server}"
                )
            counts = [vnodes_per_server] * num_servers
        else:
            if total_vnodes < num_servers:
                raise ConfigurationError(
                    f"total_vnodes must be >= num_servers, got {total_vnodes}"
                )
            base, extra = divmod(total_vnodes, num_servers)
            counts = [base + (1 if s < extra else 0) for s in range(num_servers)]
        # Draw positions exactly as the per-add loop did (same PRNG stream,
        # duplicates redrawn against every node placed so far), then build
        # the ring in one bulk sort instead of ~V^2/2 shifting inserts.
        drawn: set = set()
        nodes: List[VirtualNode] = []
        for server, count in enumerate(counts):
            placed = 0
            while placed < count:
                position = rng.randrange(ring_size)
                if position in drawn:
                    continue  # duplicate position: redraw
                drawn.add(position)
                nodes.append(VirtualNode(position, server))
                placed += 1
        self.ring.add_many(nodes)
        self.backend = VnodeBackend(self.ring, num_servers)

    @classmethod
    def log_variant(cls, num_servers: int, seed: int = 0) -> "ConsistentRouter":
        """The O(log n)-virtual-nodes-per-server variant (Fig. 5 squares)."""
        return cls(num_servers, seed=seed)

    @classmethod
    def quadratic_variant(cls, num_servers: int, seed: int = 0) -> "ConsistentRouter":
        """The n^2/2-total-virtual-nodes variant (Fig. 5 stars, Fig. 9 triangles)."""
        return cls(num_servers, total_vnodes=max(num_servers, num_servers ** 2 // 2), seed=seed)

    @property
    def name(self) -> str:
        return "Consistent"


class ProteusRouter(RingRouter):
    """Table II "Proteus": Algorithm 1 deterministic virtual-node placement.

    Exactly ``N(N-1)/2 + 1`` virtual nodes; every active prefix owns equal
    key-space; transitions remap the Section II lower bound.
    """

    def __init__(
        self,
        num_servers: int,
        ring_size: int = DEFAULT_RING_SIZE,
        fast: bool = False,
    ) -> None:
        super().__init__(num_servers)
        self.backend = ProteusBackend(num_servers, ring_size, fast=fast)
        self.placement: Optional[Placement] = self.backend.placement
        self.ring = self.backend.ring


class MultiProbeRouter(RingRouter):
    """Multi-probe consistent hashing: one position per server, ``k`` probes.

    O(N) table memory instead of the Algorithm 1 ``N(N-1)/2 + 1`` vnodes;
    peak-to-average load ~``1 + O(1/k)`` (about 1.1 at the default
    ``k = 21``).  Remap on resize is near the Section II lower bound but
    not exactly minimal, and per-prefix balance is statistical, not exact.
    """

    def __init__(
        self,
        num_servers: int,
        ring_size: int = DEFAULT_RING_SIZE,
        probes: int = DEFAULT_PROBES,
    ) -> None:
        super().__init__(num_servers)
        self.backend = MultiProbeBackend(num_servers, ring_size, probes=probes)
        self.ring = None

    @property
    def name(self) -> str:
        return "MultiProbe"


class PowerRouter(RingRouter):
    """Power consistent hashing: O(1) expected lookup, zero table memory.

    Exact ``1/n`` balance and exactly minimal remap while ``n`` stays
    within a power-of-two band; crossing a band boundary reshuffles about
    half the key space (the backend reports ``expected_remap_fraction =
    None`` there so transitions fall back to conservative digests).
    """

    def __init__(self, num_servers: int, ring_size: int = DEFAULT_RING_SIZE) -> None:
        super().__init__(num_servers)
        self.backend = PowerBackend(num_servers, ring_size)
        self.ring = None

    @property
    def name(self) -> str:
        return "Power"


def _make_consistent(
    num_servers: int, variant: str = "log", seed: int = 0
) -> "ConsistentRouter":
    if variant == "log":
        return ConsistentRouter.log_variant(num_servers, seed=seed)
    if variant == "quadratic":
        return ConsistentRouter.quadratic_variant(num_servers, seed=seed)
    raise ConfigurationError(f"unknown consistent-hashing variant {variant!r}")


#: The Table II scenario registry: name -> router factory.  ``make_router``
#: and CLI ``--scenario`` choices derive from it; a new routing scheme is
#: one ``ROUTER_SCENARIOS.register(...)`` call away from every entry point.
ROUTER_SCENARIOS: "Registry[Router]" = Registry("scenario")
ROUTER_SCENARIOS.register("static", StaticRouter)
ROUTER_SCENARIOS.register("naive", NaiveRouter)
ROUTER_SCENARIOS.register("consistent", _make_consistent)
ROUTER_SCENARIOS.register("proteus", ProteusRouter)
ROUTER_SCENARIOS.register("multiprobe", MultiProbeRouter)
ROUTER_SCENARIOS.register("power", PowerRouter)


def make_router(scenario: str, num_servers: int, **kwargs) -> Router:
    """Factory keyed by Table II scenario name (case-insensitive).

    ``consistent`` accepts ``variant='log'`` (default) or ``variant='quadratic'``.
    ``multiprobe`` and ``power`` select the O(1)-scheme backends of
    :mod:`repro.core.ring`.  Thin wrapper over :data:`ROUTER_SCENARIOS`.
    """
    return ROUTER_SCENARIOS.create(scenario, num_servers, **kwargs)


def scenario_routers(num_servers: int) -> List[Router]:
    """The four Table II routers, in the paper's presentation order."""
    return [
        StaticRouter(num_servers),
        NaiveRouter(num_servers),
        ConsistentRouter.quadratic_variant(num_servers),
        ProteusRouter(num_servers),
    ]
