"""Hot-key armor: frequency sketches, a frontend-local cache, and load EWMAs.

No matter how balanced the ring is, a Zipf head key concentrates on a
single cache server — the failure mode DistCache ("Provable Load Balancing
for Large-Scale Storage Systems with Distributed Caching", PAPERS.md)
addresses with a *small* upper-layer cache plus power-of-two-choices
routing.  This module is that defense, adapted to Proteus:

* :class:`CountMinSketch` + :class:`TopKSketch` elect hot keys *online* in
  bounded space — no key enumeration, no offline pass.  The sketch never
  underestimates, so a genuinely hot key cannot be displaced by tail noise
  (see :meth:`TopKSketch.elected` for the exact guarantee).
* :class:`HotKeyCache` is the tiny frontend-local cache for elected keys.
  Staleness is bounded the way Algorithm 2 bounds transition staleness:
  entries expire after a TTL, and write-backs/puts invalidate (or refresh)
  the local copy — digest-style invalidation instead of a coherence
  protocol.  DistCache's argument carries over: a cache of ``O(k log N)``
  entries above ``N`` servers absorbs any adversarial hot set of size
  ``k``, so the per-server load the backing tier sees is provably flat.
* :class:`ServerLoadEWMA` tracks a decayed per-server load score fed by
  the drivers (request arrivals and, optionally, observed latency).  The
  replicated read path uses it for power-of-two-choices routing: for a
  *hot* key, sample ``d`` replica owners and read from the least loaded —
  cold keys keep strict ring order, so locality is untouched.

Everything here is pure bookkeeping — no I/O, no clocks of its own — so
the sans-IO retrieval engines own these objects and every driver
(simulated or live TCP) shares one implementation.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.bloom.hashing import Key, stable_hash64
from repro.errors import ConfigurationError

__all__ = [
    "CountMinSketch",
    "HotKeyCache",
    "HotKeyArmor",
    "ServerLoadEWMA",
    "TopKSketch",
]

#: Salt base for the sketch's row hash functions (distinct from the ring
#: salts ``0x100+`` and the digest salts ``0x51``/``0x52``).
SKETCH_SALT_BASE = 0x200


class CountMinSketch:
    """Conservative-update count-min sketch over ``depth x width`` counters.

    Estimates never *under*-count: ``estimate(key) >= true count`` always.
    Conservative update (only the minimum-valued cells are incremented)
    tightens the overestimate under skew — exactly the regime a hot-key
    detector runs in.  Hashing goes through the memoized
    :func:`~repro.bloom.hashing.stable_hash64` family, so estimates are
    deterministic across processes and platforms (objective 3: independent
    web servers must elect the same hot set under the same traffic).
    """

    def __init__(self, width: int = 1024, depth: int = 4) -> None:
        if width < 1 or depth < 1:
            raise ConfigurationError(
                f"sketch needs width >= 1 and depth >= 1, got {width}x{depth}"
            )
        self.width = width
        self.depth = depth
        self._rows: List[List[int]] = [[0] * width for _ in range(depth)]
        #: total observations recorded (the stream length ``N``)
        self.observations = 0

    def _cells(self, key: Key) -> List[int]:
        return [
            stable_hash64(key, salt=SKETCH_SALT_BASE + row) % self.width
            for row in range(self.depth)
        ]

    def add(self, key: Key, count: int = 1) -> int:
        """Record *count* occurrences; returns the updated estimate."""
        cells = self._cells(key)
        rows = self._rows
        current = min(rows[row][cell] for row, cell in enumerate(cells))
        target = current + count
        for row, cell in enumerate(cells):
            if rows[row][cell] < target:
                rows[row][cell] = target
        self.observations += count
        return target

    def estimate(self, key: Key) -> int:
        """Upper-bounded occurrence count for *key* (never underestimates)."""
        return min(
            self._rows[row][cell]
            for row, cell in enumerate(self._cells(key))
        )

    def memory_bytes(self) -> int:
        """Rough counter-array footprint (the space bound being paid)."""
        return self.width * self.depth * 8


class TopKSketch:
    """Space-bounded online top-k election: count-min + a capacity-k heap.

    Tracks at most *capacity* candidate keys.  A new key displaces the
    least-frequent tracked candidate only when its sketch estimate reaches
    the current minimum, so membership stabilizes on the head of the
    distribution as the stream lengthens.

    Election guarantee (the property the hypothesis suite pins): a key
    whose true count is strictly greater than the true counts of all but
    at most ``capacity - 1`` other keys is always elected — the sketch
    never underestimates, so at 2x capacity the elected set is a superset
    of the true top-k whenever the head is separated from rank ``2k``.
    """

    def __init__(
        self, capacity: int = 128, width: int = 1024, depth: int = 4
    ) -> None:
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.sketch = CountMinSketch(width, depth)
        #: tracked candidate -> latest sketch estimate
        self._tracked: Dict[Key, int] = {}
        #: lazy min-heap of (estimate, key); stale entries skipped on pop
        self._heap: List[Tuple[int, Key]] = []

    def __len__(self) -> int:
        return len(self._tracked)

    def __contains__(self, key: Key) -> bool:
        return key in self._tracked

    def record(self, key: Key, count: int = 1) -> bool:
        """Observe *key*; returns True when it is (now) elected hot."""
        estimate = self.sketch.add(key, count)
        tracked = self._tracked
        if key in tracked:
            tracked[key] = estimate
            heapq.heappush(self._heap, (estimate, key))
            return True
        if len(tracked) < self.capacity:
            tracked[key] = estimate
            heapq.heappush(self._heap, (estimate, key))
            return True
        if estimate >= self.threshold():
            self._evict_min()
            tracked[key] = estimate
            heapq.heappush(self._heap, (estimate, key))
            return True
        return False

    def is_hot(self, key: Key) -> bool:
        """Membership in the elected set (no sketch update)."""
        return key in self._tracked

    def threshold(self) -> int:
        """The smallest tracked estimate — the bar a newcomer must meet."""
        tracked = self._tracked
        if not tracked:
            return 0
        heap = self._heap
        while heap:
            estimate, key = heap[0]
            if tracked.get(key) == estimate:
                return estimate
            heapq.heappop(heap)  # stale: the key was updated or evicted
        # Heap drained by lazy deletion: rebuild from the tracked map.
        self._heap = [(est, key) for key, est in tracked.items()]
        heapq.heapify(self._heap)
        return self._heap[0][0]

    def _evict_min(self) -> None:
        tracked = self._tracked
        heap = self._heap
        while heap:
            estimate, key = heapq.heappop(heap)
            if tracked.get(key) == estimate:
                del tracked[key]
                return
        if tracked:  # pragma: no cover - lazy-heap safety net
            victim = min(tracked, key=tracked.get)
            del tracked[victim]

    def elected(self) -> Dict[Key, int]:
        """The current hot set with estimates (a copy; safe to iterate)."""
        return dict(self._tracked)


@dataclass
class HotKeyCacheStats:
    """Counters for one frontend-local hot-key cache."""

    hits: int = 0
    misses: int = 0
    expirations: int = 0
    invalidations: int = 0
    stores: int = 0

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class HotKeyCache:
    """A tiny frontend-local cache for sketch-elected hot keys.

    Staleness is TTL-bounded exactly the way Algorithm 2 bounds transition
    staleness: an entry older than *ttl* is never served, and write-backs /
    puts invalidate (or refresh) the local copy immediately — the same
    digest-style "bounded window, then the authoritative path" contract
    the transition drain window gives remapped keys.  Capacity is LRU
    bounded; the cache is supposed to hold the Zipf *head*, not the body.
    """

    def __init__(self, capacity: int = 64, ttl: float = 1.0) -> None:
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        if ttl <= 0:
            raise ConfigurationError(f"ttl must be positive, got {ttl}")
        self.capacity = capacity
        self.ttl = ttl
        #: key -> (value, stored_at); dict order doubles as LRU order
        self._entries: Dict[Key, Tuple[Any, float]] = {}
        self.stats = HotKeyCacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Key) -> bool:
        return key in self._entries

    def get(self, key: Key, now: float) -> Optional[Any]:
        """The locally cached value, or ``None`` on miss/expiry."""
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        value, stored_at = entry
        if now - stored_at >= self.ttl:
            del self._entries[key]
            self.stats.expirations += 1
            self.stats.misses += 1
            return None
        # LRU touch: move to the most-recent end.
        del self._entries[key]
        self._entries[key] = (value, stored_at)
        self.stats.hits += 1
        return value

    def store(self, key: Key, value: Any, now: float) -> None:
        """Install/refresh the local copy (restarts the staleness window)."""
        entries = self._entries
        if key in entries:
            del entries[key]
        elif len(entries) >= self.capacity:
            del entries[next(iter(entries))]  # LRU victim
        entries[key] = (value, now)
        self.stats.stores += 1

    def invalidate(self, key: Key) -> bool:
        """Drop the local copy (a write made it stale); True if present."""
        if key in self._entries:
            del self._entries[key]
            self.stats.invalidations += 1
            return True
        return False

    def clear(self) -> None:
        self._entries.clear()


class ServerLoadEWMA:
    """Per-server exponentially-decayed load scores for d-choices routing.

    The score is a decayed request counter: :meth:`record_request` adds one
    unit which halves every *halflife* seconds, so the score approximates
    "requests in flight / recent arrival pressure" without the drivers
    wiring explicit completion callbacks.  Drivers that observe latency
    feed :meth:`observe_latency`; the per-server latency EWMA scales the
    score so a slow replica reads as more loaded than an idle one at equal
    arrival rate.

    Decay is computed lazily against the caller's clock — the tracker has
    no clock of its own, keeping it substrate-agnostic (virtual sim time
    and live monotonic time both work).
    """

    def __init__(
        self, halflife: float = 1.0, latency_smoothing: float = 0.2
    ) -> None:
        if halflife <= 0:
            raise ConfigurationError(
                f"halflife must be positive, got {halflife}"
            )
        if not 0 < latency_smoothing <= 1:
            raise ConfigurationError(
                f"latency_smoothing must be in (0, 1], got {latency_smoothing}"
            )
        self.halflife = halflife
        self.latency_smoothing = latency_smoothing
        #: server -> (score, last_update)
        self._scores: Dict[int, Tuple[float, float]] = {}
        #: server -> latency EWMA seconds
        self._latency: Dict[int, float] = {}

    def _decayed(self, server: int, now: float) -> float:
        entry = self._scores.get(server)
        if entry is None:
            return 0.0
        score, updated = entry
        if now <= updated:
            return score
        return score * math.exp(-(now - updated) * math.log(2) / self.halflife)

    def record_request(self, server: int, now: float, weight: float = 1.0) -> None:
        """Charge one (weighted) request against *server* at time *now*."""
        self._scores[server] = (self._decayed(server, now) + weight, now)

    def observe_latency(self, server: int, latency: float) -> None:
        """Fold one observed round-trip latency into the server's EWMA."""
        previous = self._latency.get(server)
        alpha = self.latency_smoothing
        self._latency[server] = (
            latency if previous is None
            else (1 - alpha) * previous + alpha * latency
        )

    def latency(self, server: int) -> float:
        """The server's latency EWMA (0.0 until first observation)."""
        return self._latency.get(server, 0.0)

    def load(self, server: int, now: float) -> float:
        """The current load score (decayed rate x relative latency)."""
        score = self._decayed(server, now)
        ewma = self._latency.get(server)
        if ewma is None or not self._latency:
            return score
        mean = sum(self._latency.values()) / len(self._latency)
        if mean <= 0:
            return score
        return score * (ewma / mean)

    def snapshot(self, servers, now: float) -> Dict[int, float]:
        """Load scores for *servers* at time *now* (reporting/benches)."""
        return {server: self.load(server, now) for server in servers}


class HotKeyArmor:
    """The engine-side bundle: election sketch + local cache + load scores.

    One instance per retrieval engine (therefore per frontend): hot-set
    election and the local cache are deliberately frontend-local state —
    independent frontends converge on the same hot set because they see
    the same traffic distribution, not because they coordinate (the same
    argument the paper makes for deterministic routing).
    """

    def __init__(
        self,
        cache_capacity: int = 64,
        cache_ttl: float = 1.0,
        track: int = 128,
        sketch_width: int = 1024,
        sketch_depth: int = 4,
        load_halflife: float = 1.0,
    ) -> None:
        self.sketch = TopKSketch(track, sketch_width, sketch_depth)
        self.cache = HotKeyCache(cache_capacity, cache_ttl)
        self.loads = ServerLoadEWMA(halflife=load_halflife)

    def lookup(self, key: Key, now: float) -> Optional[Any]:
        """Record the access and return the fresh local value, if any.

        Only sketch-elected keys are ever served locally; a cold key pays
        one dict miss and proceeds to the normal Algorithm 2 path.
        """
        hot = self.sketch.record(key)
        if not hot:
            return None
        return self.cache.get(key, now)

    def observe(self, key: Key) -> bool:
        """Record the access without consulting the cache; True if hot."""
        return self.sketch.record(key)

    def is_hot(self, key: Key) -> bool:
        return self.sketch.is_hot(key)

    def admit(self, key: Key, value: Any, now: float) -> bool:
        """Install a freshly fetched value locally when the key is hot.

        Called at the same moments Algorithm 2 writes back to the new
        owner, so the local copy is never older than the authoritative
        cache copy; True when stored.
        """
        if not self.sketch.is_hot(key):
            return False
        self.cache.store(key, value, now)
        return True

    def invalidate(self, key: Key) -> bool:
        """Digest-style invalidation: a write made the local copy stale."""
        return self.cache.invalidate(key)
