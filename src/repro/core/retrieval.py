"""The sans-IO Algorithm-2 retrieval core (paper Section IV, "Date Retrieval").

Algorithm 2 — route to the new owner, consult the old owner's digest on a
miss during a transition, fall back to the database, write the value back —
is pure *decision* logic.  What differs between execution substrates is only
how each step is performed: the simulator charges latency-model samples
against a virtual clock, the live tier awaits memcached round trips over
TCP.  This module owns the decisions; drivers own the I/O.

:class:`RetrievalEngine.retrieve` is a generator that *yields commands* —
:class:`ProbeCache`, :class:`CheckDigest`, :class:`ReadDatabase`,
:class:`WriteBack`, :class:`WaitForLeader` — and receives each command's
result via ``send``.  A driver is a small loop::

    steps = engine.retrieve(key, epochs)
    result = None
    try:
        while True:
            command = steps.send(result)
            result = ...  # perform the I/O the command names
    except StopIteration as stop:
        outcome = stop.value  # RetrievalOutcome

Because both the simulated web tier (:class:`repro.web.frontend.WebServer`)
and the asyncio tier (:class:`repro.net.webtier.AsyncProteusFrontend`)
drive this one engine, the branch structure of Algorithm 2 — and therefore
the :class:`FetchPath` accounting — cannot drift between them.  The same
holds for the Section III-E replica-failover read path, encoded by
:class:`ReplicatedRetrievalEngine`.

Epochs come in as :class:`~repro.core.transition.RoutingEpochs` — the
simulator reads them from :meth:`repro.cache.cluster.CacheCluster.\
routing_epochs`, the live tier from its own
:class:`~repro.core.transition.TransitionManager` — so the engine never
needs to know where transition state lives.

**Batched retrieval.**  :meth:`RetrievalEngine.retrieve_many` is the batch
planner: it runs Algorithm 2 for a whole key set at once, grouping probes
and write-backs by owning server per routing epoch so a driver can cover N
keys with one multiget round trip per touched server instead of one round
trip per key.  The batch protocol yields *rounds* — tuples of commands
with no mutual dependencies — and receives a tuple of answers aligned by
index, so a live driver may execute each round concurrently
(``asyncio.gather`` over per-server ``get_multi`` calls) while a simulated
driver charges one latency sample per server touched.  Per-item semantics
are untouched: for any key set and transition state the outcome map and
the :class:`FetchStats` counts are identical to N sequential
:meth:`RetrievalEngine.retrieve` runs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import (
    Any,
    ClassVar,
    Dict,
    FrozenSet,
    Generator,
    Iterable,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    Union,
    runtime_checkable,
)

from repro.bloom.hashing import KeyHashes, digest_bases_many
from repro.core.hotkey import HotKeyArmor
from repro.core.transition import RoutingEpochs

__all__ = [
    "BatchCommand",
    "CheckDigest",
    "CheckDigestMulti",
    "Command",
    "CommandRound",
    "DEGRADED_EVENTS",
    "FetchPath",
    "FetchResult",
    "FetchStats",
    "LeaderWindowRegistry",
    "ProbeCache",
    "ProbeCacheMulti",
    "ReadDatabase",
    "ReplicatedOutcome",
    "ReplicatedRetrievalEngine",
    "RetrievalConfig",
    "RetrievalConfigMixin",
    "RetrievalEngine",
    "RetrievalOutcome",
    "SERVER_UNAVAILABLE",
    "SKIPPED",
    "WaitForLeader",
    "WriteBack",
    "WriteBackMulti",
]


# --------------------------------------------------------------------- paths


class FetchPath(str, enum.Enum):
    """Which branch of Algorithm 2 served the request.

    A ``str`` mix-in so members compare and hash like their wire labels
    (``FetchPath.HIT_NEW == "hit_new"``): simulator reports and live-tier
    reports key their counters identically and stay directly comparable.
    """

    #: served from the frontend-local hot-key cache (sketch-elected keys
    #: only; DistCache-style armor) — no cache-server round trip at all.
    HIT_LOCAL = "hit_local"
    #: hit at the authoritative (new-mapping) server — Alg. 2 line 3.
    HIT_NEW = "hit_new"
    #: digest hit, data pulled from the old owner — Alg. 2 line 7 ("hot").
    HIT_OLD = "hit_old"
    #: digest said yes but the old server missed — false positive, went to DB.
    FALSE_POSITIVE_DB = "false_positive_db"
    #: digest said no (cold data) or no transition in flight — went to DB.
    MISS_DB = "miss_db"
    #: coalesced behind an in-flight DB fetch for the same key (dog-pile
    #: protection, the paper's reference [12] scenario).
    COALESCED = "coalesced"
    #: a cache fault (dead/unreachable server, unknown digest) blocked the
    #: normal path and the database served instead — the *failure* fallback
    #: of Algorithm 2, as opposed to the ordinary-miss fallbacks above.
    DEGRADED_DB = "degraded_db"
    #: admission control refused the DB-path work (overload): the request
    #: was *not served* (value ``None``) — unlike :attr:`DEGRADED_DB`,
    #: which is served correctly at extra latency cost.  Hits never land
    #: here: they complete before any database decision is made.
    SHED = "shed"


#: The degraded-path event labels :class:`FetchStats` counts — one per
#: fault the engine can serve around: the new owner's probe skipped, the
#: old owner's probe skipped, a digest consult answered "unknown", and a
#: write-back that could not be installed.
DEGRADED_EVENTS = ("probe_new", "probe_old", "digest", "writeback")


@dataclass
class FetchStats:
    """Per-path counters for one Algorithm-2 executor (web server)."""

    counts: Dict[FetchPath, int] = field(
        default_factory=lambda: {path: 0 for path in FetchPath}
    )
    #: how often the engine served *around* a fault, per degraded event
    #: (see :data:`DEGRADED_EVENTS`); one request may record several.
    degraded: Dict[str, int] = field(
        default_factory=lambda: {event: 0 for event in DEGRADED_EVENTS}
    )

    def record(self, path: FetchPath) -> None:
        self.counts[path] += 1

    def record_degraded(self, event: str) -> None:
        """Count one served-around fault (see :data:`DEGRADED_EVENTS`)."""
        self.degraded[event] = self.degraded.get(event, 0) + 1

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    @property
    def shed(self) -> int:
        """Requests refused by admission control (not served)."""
        return self.counts[FetchPath.SHED]

    @property
    def goodput(self) -> int:
        """Requests actually served (total minus shed)."""
        return self.total - self.shed

    @property
    def shed_fraction(self) -> float:
        """Fraction of requests shed — the health monitor's overload
        signal."""
        total = self.total
        return self.shed / total if total else 0.0

    @property
    def degraded_events(self) -> int:
        """Total faults served around (sum over the degraded counters)."""
        return sum(self.degraded.values())

    @property
    def database_fraction(self) -> float:
        """Fraction of requests that reached the DB tier."""
        total = self.total
        if total == 0:
            return 0.0
        db = (
            self.counts[FetchPath.FALSE_POSITIVE_DB]
            + self.counts[FetchPath.MISS_DB]
            + self.counts[FetchPath.DEGRADED_DB]
        )
        return db / total

    def as_labels(self) -> Dict[str, int]:
        """Counters keyed by wire label (for JSON reports)."""
        return {path.value: count for path, count in self.counts.items()}


# ------------------------------------------------------------- configuration


@dataclass
class RetrievalConfig:
    """Engine-level retrieval options, shared by every driver.

    One instance lives on the engine; drivers re-export it via
    :class:`RetrievalConfigMixin` instead of copying property/setter
    plumbing, so a new option lands in every substrate at once.
    """

    #: dog-pile protection — while a DB fetch for a key is in flight, later
    #: misses for the same key wait for it instead of issuing duplicate DB
    #: reads (the "memcache dog pile" the paper's introduction cites).  Off
    #: by default: the paper's evaluation runs without it, and the Fig. 9
    #: spike depends on the dog pile being possible.
    coalesce_misses: bool = False
    #: upper bound on keys per batched command (:class:`ProbeCacheMulti` /
    #: :class:`WriteBackMulti`); larger groups are split, the way memcached
    #: clients chunk oversized multigets.  ``0`` disables the limit.
    max_multiget_keys: int = 64
    #: hot-key armor — serve sketch-elected hot keys from a tiny
    #: frontend-local cache (:class:`~repro.core.hotkey.HotKeyCache`) with
    #: digest-style TTL-bounded staleness.  Off by default: the paper's
    #: Algorithm 2 runs without it; the armor is the DistCache-inspired
    #: extension for Zipf head keys.  Takes effect only when the driver
    #: passes its clock (``now=``) to ``retrieve``/``retrieve_many``.
    hot_key_cache: bool = False
    #: entries the frontend-local hot-key cache holds (the Zipf *head*).
    hot_key_capacity: int = 64
    #: staleness bound for locally served values, in driver-clock seconds.
    hot_key_ttl: float = 1.0
    #: candidate keys the top-k election sketch tracks (>= capacity; the
    #: 2x headroom the election guarantee assumes).
    hot_key_track: int = 128
    #: count-min geometry backing the election (width x depth counters).
    hot_key_sketch_width: int = 1024
    hot_key_sketch_depth: int = 4
    #: replicas sampled by load-aware read routing: a sketch-elected hot
    #: key reads from the least-loaded of ``d_choices`` replica owners
    #: (power-of-two choices at 2).  ``1`` keeps strict ring order; only
    #: the replicated engine uses this.
    d_choices: int = 1
    #: halflife (driver-clock seconds) of the per-server load EWMA that
    #: feeds the ``d_choices`` pick.
    load_halflife: float = 1.0


class RetrievalConfigMixin:
    """Facade over the engine's :class:`RetrievalConfig` for drivers.

    Any driver holding its engine at ``self.engine`` inherits the shared
    config surface — ``config``, ``coalesce_misses``, ``max_multiget_keys``
    — without re-implementing the properties per substrate.
    """

    engine: Any

    @property
    def config(self) -> RetrievalConfig:
        """The engine's retrieval options (shared, live object)."""
        return self.engine.config

    @property
    def coalesce_misses(self) -> bool:
        return self.engine.config.coalesce_misses

    @coalesce_misses.setter
    def coalesce_misses(self, enabled: bool) -> None:
        self.engine.config.coalesce_misses = enabled

    @property
    def max_multiget_keys(self) -> int:
        return self.engine.config.max_multiget_keys

    @max_multiget_keys.setter
    def max_multiget_keys(self, limit: int) -> None:
        self.engine.config.max_multiget_keys = limit

    @property
    def hot_key_cache(self) -> bool:
        return self.engine.config.hot_key_cache

    @hot_key_cache.setter
    def hot_key_cache(self, enabled: bool) -> None:
        self.engine.config.hot_key_cache = enabled

    @property
    def d_choices(self) -> int:
        return self.engine.config.d_choices

    @d_choices.setter
    def d_choices(self, choices: int) -> None:
        self.engine.config.d_choices = choices


# ------------------------------------------------------------------ commands


@runtime_checkable
class BatchCommand(Protocol):
    """The one shape every batched engine command presents to a driver.

    The scalar/batch command pairs (:class:`ProbeCache` /
    :class:`ProbeCacheMulti`, :class:`CheckDigest` /
    :class:`CheckDigestMulti`, :class:`WriteBack` / :class:`WriteBackMulti`)
    share a vocabulary: every command names its ``server`` and its
    ``reply_with`` contract, and the batch variants carry the grouped
    ``keys``.  A driver's batched executor therefore dispatches on
    ``reply_with`` for the whole trio instead of growing a per-class
    ``isinstance`` ladder:

    ========== ===================== =====================================
    reply_with command               driver answer
    ========== ===================== =====================================
    values     ProbeCacheMulti       dict of key -> value for the hits
    membership CheckDigestMulti      sequence of bools aligned with keys
    ack        WriteBackMulti        ignored
    ========== ===================== =====================================

    Any of the three may instead be answered :data:`SERVER_UNAVAILABLE`
    (the whole group degrades) and the probes also accept :data:`SKIPPED`.
    ``isinstance(command, BatchCommand)`` is a runtime check for the batch
    trio — the scalar halves carry ``server``/``reply_with`` but not
    ``keys``, so they do not match.
    """

    reply_with: ClassVar[str]

    @property
    def server(self) -> int: ...

    @property
    def keys(self) -> Tuple[str, ...]: ...


@dataclass(frozen=True)
class ProbeCache:
    """``get`` the key from cache server *server_id*.

    Driver answer: the value, ``None`` on a miss, or :data:`SKIPPED` when
    the server is not serving requests (replicated reads only — the
    unreplicated path never probes a dead server).
    """

    server_id: int

    #: see :class:`BatchCommand` (the scalar half of the values pair)
    reply_with: ClassVar[str] = "values"

    @property
    def server(self) -> int:
        return self.server_id


@dataclass(frozen=True)
class CheckDigest:
    """Consult the broadcast digest of old owner *server_id* for the key.

    Driver answer: ``bool`` — membership according to the digest, ``False``
    when no digest was broadcast for that server (the safe fallback: skip
    the old owner, go to the database).

    In single-key retrievals the driver knows the key from its own call
    context and ``key`` stays ``None``; batched retrievals carry the key
    explicitly because one round interleaves many keys.

    ``hashes`` (when set) is the key's memoized
    :class:`~repro.bloom.hashing.KeyHashes`; drivers forward it to
    :meth:`~repro.core.transition.Transition.digest_hit` so the digest
    probes reuse the double-hash pair instead of rehashing the key.  It is
    excluded from equality so command traces compare on the decision alone.
    """

    server_id: int
    key: Optional[str] = None
    hashes: Optional[KeyHashes] = field(compare=False, repr=False, default=None)

    #: see :class:`BatchCommand` (the scalar half of the membership pair)
    reply_with: ClassVar[str] = "membership"

    @property
    def server(self) -> int:
        return self.server_id


@dataclass(frozen=True)
class WaitForLeader:
    """If another request's DB fetch for this key is in flight, wait for it.

    Driver answer: ``True`` when a leader existed and the wait completed
    (the engine then re-probes the new owner), ``False`` when there was no
    leader or its window already closed (the engine reads the DB itself).

    ``key`` is set only on the batched path (see :class:`CheckDigest`).
    """

    key: Optional[str] = None


@dataclass(frozen=True)
class ReadDatabase:
    """Read the key from the authoritative store (never misses).

    Driver answer: the value.  When ``announce_leader`` is set the driver
    must also publish this request as the key's in-flight leader so that
    concurrent misses can coalesce behind it (see :class:`WaitForLeader`).

    ``key`` is set only on the batched path (see :class:`CheckDigest`).
    """

    announce_leader: bool = False
    key: Optional[str] = None


@dataclass(frozen=True)
class WriteBack:
    """Install *value* at cache server *server_id* (Alg. 2 line 12).

    Driver answer: ignored.  Replicated drivers silently skip write-backs
    to servers that are not serving requests.
    """

    server_id: int
    value: Any

    #: see :class:`BatchCommand` (the scalar half of the ack pair)
    reply_with: ClassVar[str] = "ack"

    @property
    def server(self) -> int:
        return self.server_id


@dataclass(frozen=True)
class ProbeCacheMulti:
    """``get_multi`` *keys* from cache server *server_id* — one round trip.

    Driver answer: a ``dict`` mapping each key that **hit** to its value
    (missing keys missed, exactly like memcached's multiget reply), or
    :data:`SKIPPED` when the server is not serving requests (replicated
    reads only; no probe happened for any key).
    """

    server_id: int
    keys: Tuple[str, ...]

    #: see :class:`BatchCommand`
    reply_with: ClassVar[str] = "values"

    @property
    def server(self) -> int:
        return self.server_id


@dataclass(frozen=True)
class CheckDigestMulti:
    """Consult old owner *server_id*'s digest for every key — one grouped
    probe per ceding server instead of one scalar consult per key.

    Driver answer: a sequence of bools aligned with ``keys`` — element
    ``i`` must equal the answer a scalar :class:`CheckDigest` for
    ``keys[i]`` would get (:meth:`~repro.core.transition.Transition.\
digest_hit_many` guarantees bit-identity) — or
    :data:`SERVER_UNAVAILABLE` when the server's digest state cannot be
    consulted at all, which degrades the whole group to the database.

    ``hashes`` (when set) is aligned with ``keys`` and carries each key's
    memoized double-hash pair, exactly like the scalar command; excluded
    from equality so command traces compare on the decision alone.
    """

    server_id: int
    keys: Tuple[str, ...]
    hashes: Tuple[KeyHashes, ...] = field(compare=False, repr=False, default=())

    #: see :class:`BatchCommand`
    reply_with: ClassVar[str] = "membership"

    @property
    def server(self) -> int:
        return self.server_id


@dataclass(frozen=True)
class WriteBackMulti:
    """Install every ``(key, value)`` pair at server *server_id* — one
    pipelined round trip.

    Driver answer: ignored.  Replicated drivers silently skip write-backs
    to servers that are not serving requests.
    """

    server_id: int
    items: Tuple[Tuple[str, Any], ...]

    #: see :class:`BatchCommand`
    reply_with: ClassVar[str] = "ack"

    @property
    def server(self) -> int:
        return self.server_id

    @property
    def keys(self) -> Tuple[str, ...]:
        """The grouped keys (derived from ``items``; the batch contract)."""
        return tuple(key for key, _ in self.items)


Command = Union[
    ProbeCache,
    CheckDigest,
    WaitForLeader,
    ReadDatabase,
    WriteBack,
    ProbeCacheMulti,
    CheckDigestMulti,
    WriteBackMulti,
]

#: One step of the batched protocol: commands with no mutual dependencies,
#: answered by a tuple of results aligned by index.  Drivers may execute a
#: round's commands concurrently.
CommandRound = Tuple[Command, ...]

class _DriverSignal:
    """An identity sentinel a driver may answer a command with.

    Falsy on purpose: a :class:`CheckDigest` answered with a signal must
    not read as a digest hit in any driver that forgets to special-case it.
    """

    __slots__ = ("_name",)

    def __init__(self, name: str) -> None:
        self._name = name

    def __repr__(self) -> str:
        return self._name

    def __bool__(self) -> bool:
        return False


#: Driver answer to :class:`ProbeCache` / :class:`ProbeCacheMulti` meaning
#: "server not serving; probe did not happen" — distinct from ``None`` (a
#: real miss).
SKIPPED = _DriverSignal("SKIPPED")

#: Driver answer to :class:`ProbeCache` / :class:`ProbeCacheMulti` /
#: :class:`CheckDigest` / :class:`WriteBack` / :class:`WriteBackMulti`
#: meaning "the server could not be reached (dead, hung, or open-circuit)".
#: The engine *degrades* instead of failing: a skipped probe is a forced
#: miss, an unanswerable digest consult skips the old owner, and a failed
#: write-back is recorded but never fails the fetch — the request still
#: completes via the database (:attr:`FetchPath.DEGRADED_DB`).
SERVER_UNAVAILABLE = _DriverSignal("SERVER_UNAVAILABLE")


def _chunked(items: Sequence, size: int) -> Iterable[tuple]:
    """Split *items* into tuples of at most *size* (``size <= 0``: one)."""
    if size <= 0:
        yield tuple(items)
        return
    for start in range(0, len(items), size):
        yield tuple(items[start:start + size])


# ------------------------------------------------------------------ outcomes


@dataclass
class RetrievalOutcome:
    """Decision summary of one Algorithm-2 retrieval (no timing — the
    driver owns clocks and wraps this in its own result type)."""

    key: str
    value: Any
    path: FetchPath
    new_server: int
    old_server: Optional[int] = None
    #: True when the engine served *around* at least one fault (skipped
    #: probe, unknown digest, or failed write-back) on the way.
    degraded: bool = False

    @property
    def touched_database(self) -> bool:
        return self.path in (
            FetchPath.FALSE_POSITIVE_DB,
            FetchPath.MISS_DB,
            FetchPath.DEGRADED_DB,
        )


@dataclass
class FetchResult:
    """Outcome **and timing** of one retrieval — the unified fetch return
    type across substrates.

    The simulated :class:`~repro.web.frontend.WebServer` stamps ``started``
    / ``completed`` with virtual-clock seconds, the live
    :class:`~repro.net.webtier.AsyncProteusFrontend` with its (monotonic)
    wall clock; everything else is substrate-independent, so reports built
    from either tier diff field for field.
    """

    key: str
    value: Any
    path: FetchPath
    started: float
    completed: float
    new_server: int
    old_server: Optional[int] = None
    #: True when a fault was served around (see
    #: :attr:`RetrievalOutcome.degraded`).
    degraded: bool = False

    @property
    def latency(self) -> float:
        """End-to-end response time in seconds."""
        return self.completed - self.started

    @property
    def touched_database(self) -> bool:
        return self.path in (
            FetchPath.FALSE_POSITIVE_DB,
            FetchPath.MISS_DB,
            FetchPath.DEGRADED_DB,
        )


@dataclass
class ReplicatedOutcome:
    """Decision summary of one replicated (Section III-E) retrieval."""

    key: str
    value: Any
    #: replica owner that answered, or None if the DB (or the frontend's
    #: local hot-key cache) did
    served_by: Optional[int]
    #: how many replica owners were actually probed before an answer
    probes: int
    touched_database: bool
    #: True when a non-primary replica covered for the ring-0 owner
    failover: bool
    #: True when the frontend-local hot-key cache served (no probes at all)
    local: bool = False
    #: True when admission control refused the DB read (overload): the
    #: request was *not served* — ``value`` is ``None``.
    shed: bool = False


# ------------------------------------------------------------------- engines


def _armor_from_config(config: RetrievalConfig) -> HotKeyArmor:
    """Build one engine's hot-key armor from its config knobs."""
    return HotKeyArmor(
        cache_capacity=config.hot_key_capacity,
        cache_ttl=config.hot_key_ttl,
        track=config.hot_key_track,
        sketch_width=config.hot_key_sketch_width,
        sketch_depth=config.hot_key_sketch_depth,
        load_halflife=config.load_halflife,
    )


class RetrievalEngine:
    """Algorithm 2 as a transport-agnostic state machine.

    Args:
        router: the deterministic routing strategy shared by every web
            server (the consistency objective: same router, same decisions).
        coalesce_misses: shorthand for
            ``RetrievalConfig(coalesce_misses=...)`` (see
            :class:`RetrievalConfig`); ignored when *config* is given.
        stats: per-path counters; a fresh :class:`FetchStats` by default.
        config: the engine options object; drivers re-export it via
            :class:`RetrievalConfigMixin`.
    """

    def __init__(
        self,
        router,
        coalesce_misses: bool = False,
        stats: Optional[FetchStats] = None,
        config: Optional[RetrievalConfig] = None,
    ) -> None:
        self.router = router
        self.config = (
            config
            if config is not None
            else RetrievalConfig(coalesce_misses=coalesce_misses)
        )
        self.stats = stats if stats is not None else FetchStats()
        self._armor: Optional[HotKeyArmor] = None
        #: DB-path admission controller (duck-typed:
        #: :class:`repro.resilience.admission.AdmissionController`).
        #: ``None`` (default) admits everything — the pre-armor
        #: behaviour.  When set and the driver passes its clock as
        #: ``now``, the engine consults ``admission.admit_db(now)``
        #: immediately before any database read; a refusal sheds the
        #: request (:attr:`FetchPath.SHED`, value ``None``).  Hits are
        #: never consulted — they complete before the decision point.
        self.admission = None

    @property
    def coalesce_misses(self) -> bool:
        return self.config.coalesce_misses

    @coalesce_misses.setter
    def coalesce_misses(self, enabled: bool) -> None:
        self.config.coalesce_misses = enabled

    @property
    def armor(self) -> HotKeyArmor:
        """The hot-key armor bundle (built lazily from the config knobs).

        Geometry knobs (capacity/ttl/sketch) are read once, on first use;
        the ``hot_key_cache`` switch itself may be toggled at any time.
        """
        if self._armor is None:
            self._armor = _armor_from_config(self.config)
        return self._armor

    def retrieve(
        self, key: str, epochs: RoutingEpochs, now: Optional[float] = None
    ) -> Generator[Command, Any, RetrievalOutcome]:
        """Yield the I/O commands that retrieve *key* under *epochs*.

        The data path (paper Algorithm 2):

        1. probe the *new* mapping's owner; return on hit.
        2. On a miss *during a transition*, check the *old* owner's
           broadcast digest.  On a digest hit, probe the old server (the
           key is "hot" there); a miss here is a digest false positive.
        3. Still nothing: wait behind an in-flight leader if coalescing,
           else read the database.
        4. Write the value into the new owner and return it.

        Property 1 (Section IV-A): only the *first* request for a hot key
        touches the old server; the write-back in step 4 makes every
        subsequent request a step-1 hit.  Property 2: after TTL seconds
        every hot key has migrated, so the old server can power off.

        The key is hashed at most once per base: one
        :class:`~repro.bloom.hashing.KeyHashes` carries the ring hash to
        both epochs' routing lookups and the double-hash pair to the digest
        check.  Decisions are bit-identical to routing/probing per step.

        **Degraded mode.**  Any probe, digest consult, or write-back may be
        answered with :data:`SERVER_UNAVAILABLE`; the engine serves around
        the fault instead of raising — a skipped probe is a forced miss, an
        unknown digest skips the old owner, a failed write-back never fails
        the fetch — and a request the database served *because of* a fault
        records :attr:`FetchPath.DEGRADED_DB` (plus per-event counters in
        :class:`FetchStats`), never a plain miss.

        **Hot-key armor.**  With ``config.hot_key_cache`` enabled and the
        driver's clock passed as *now*, every access feeds the top-k
        election sketch, and a sketch-elected key with a fresh local copy
        is served without yielding a single command
        (:attr:`FetchPath.HIT_LOCAL`); values fetched for hot keys are
        admitted to the local cache at the same moment Algorithm 2 writes
        them back, so local staleness is TTL-bounded the way transition
        staleness is.  Without *now* the armor is inert (back-compat).
        """
        hashes = KeyHashes(key)
        if now is not None and self.config.hot_key_cache:
            local = self.armor.lookup(key, now)
            if local is not None:
                new_id = self.router.route_hashed(hashes, epochs.new)
                return self._finish(
                    key, local, FetchPath.HIT_LOCAL, new_id, None
                )
        new_id = self.router.route_hashed(hashes, epochs.new)
        events: List[str] = []
        forced_db = False
        answer = yield ProbeCache(new_id)
        if answer is SERVER_UNAVAILABLE:
            events.append("probe_new")
            forced_db = True
            answer = None
        if answer is not None:
            return self._finish(
                key, answer, FetchPath.HIT_NEW, new_id, None, now=now
            )

        old_id: Optional[int] = None
        path = FetchPath.MISS_DB
        if epochs.in_transition:
            old_id = self.router.route_hashed(hashes, epochs.old)
            if old_id != new_id:
                digest_hit = yield CheckDigest(old_id, hashes=hashes)
                if digest_hit is SERVER_UNAVAILABLE:
                    # Digest unknown (broadcast failed): forced miss — the
                    # safe fallback is the database, never a stale guess.
                    events.append("digest")
                    forced_db = True
                elif digest_hit:
                    answer = yield ProbeCache(old_id)
                    if answer is SERVER_UNAVAILABLE:
                        # Dead old owner: the hot copy is unreachable, fall
                        # through to the authoritative store.
                        events.append("probe_old")
                        forced_db = True
                    elif answer is not None:
                        if (yield WriteBack(new_id, answer)) is SERVER_UNAVAILABLE:
                            events.append("writeback")
                        return self._finish(
                            key, answer, FetchPath.HIT_OLD, new_id, old_id,
                            events, now=now,
                        )
                    else:
                        path = FetchPath.FALSE_POSITIVE_DB

        if self.coalesce_misses and (yield WaitForLeader()):
            # The leader's write-back has installed the value at the new
            # owner: one more cache probe instead of a DB read.  No
            # write-back of our own — rewriting would push the item's
            # creation time past later coalescing followers.
            answer = yield ProbeCache(new_id)
            if answer is SERVER_UNAVAILABLE:
                events.append("probe_new")
                forced_db = True
            elif answer is not None:
                return self._finish(
                    key, answer, FetchPath.COALESCED, new_id, old_id, events,
                    now=now,
                )

        if (
            self.admission is not None
            and now is not None
            and not self.admission.admit_db(now)
        ):
            # Overload: the sheddable tier.  No DB read, no write-back,
            # no leader announcement — the caller gets value ``None``.
            return self._finish(
                key, None, FetchPath.SHED, new_id, old_id, events, now=now
            )
        value = yield ReadDatabase(announce_leader=self.coalesce_misses)
        if (yield WriteBack(new_id, value)) is SERVER_UNAVAILABLE:
            events.append("writeback")
        if forced_db:
            path = FetchPath.DEGRADED_DB
        return self._finish(key, value, path, new_id, old_id, events, now=now)

    # ------------------------------------------------------------ batching

    def retrieve_many(
        self,
        keys: Iterable[str],
        epochs: RoutingEpochs,
        now: Optional[float] = None,
    ) -> Generator[CommandRound, Any, Dict[str, RetrievalOutcome]]:
        """The batch planner: Algorithm 2 over a whole key set at once.

        Yields *rounds* — tuples of commands with no mutual dependencies —
        and expects a tuple of answers aligned by index; a driver may
        execute each round's commands concurrently.  Probes and write-backs
        are grouped by owning server per routing epoch
        (:class:`ProbeCacheMulti` / :class:`WriteBackMulti`, split at
        ``config.max_multiget_keys``) and in-transition digest consults are
        grouped per ceding old owner (:class:`CheckDigestMulti`, never
        split), so the whole batch costs at most one multiget round trip
        per probed server per epoch and **at most one digest consult per
        old owner**; only :class:`ReadDatabase` stays per-key, exactly as
        Algorithm 2 demands.

        Returns a map from key to :class:`RetrievalOutcome`.  Duplicate
        keys collapse (the map has one entry per distinct key); for
        distinct keys the outcomes, values, and :class:`FetchStats` counts
        are identical to running :meth:`retrieve` once per key.  Hot-key
        armor applies per key as in :meth:`retrieve`: locally served keys
        never enter the probe rounds at all.
        """
        ordered = list(dict.fromkeys(keys))
        outcomes: Dict[str, RetrievalOutcome] = {}
        if not ordered:
            return outcomes
        new_owner = dict(zip(ordered, self.router.route_many(ordered, epochs.new)))
        if now is not None and self.config.hot_key_cache:
            armor = self.armor
            remaining = []
            for key in ordered:
                local = armor.lookup(key, now)
                if local is not None:
                    outcomes[key] = self._finish(
                        key, local, FetchPath.HIT_LOCAL, new_owner[key], None
                    )
                else:
                    remaining.append(key)
            ordered = remaining
            if not ordered:
                return outcomes
        #: key -> degraded event labels accumulated on the way (parity with
        #: the scalar path's per-request ``events`` list)
        events: Dict[str, List[str]] = {}
        #: keys whose database read (if any) was *forced* by a fault
        forced: set = set()

        # Phase 1 — Alg. 2 line 3, batched: probe every new owner once.
        hits, down = yield from self._probe_many(ordered, new_owner)
        for key in down:
            events.setdefault(key, []).append("probe_new")
            forced.add(key)
        pending: List[str] = []
        for key in ordered:
            value = hits.get(key)
            if value is not None:
                outcomes[key] = self._finish(
                    key, value, FetchPath.HIT_NEW, new_owner[key], None,
                    now=now,
                )
            else:
                pending.append(key)

        old_owner: Dict[str, Optional[int]] = {key: None for key in pending}
        fallback = {key: FetchPath.MISS_DB for key in pending}
        write_backs: List[Tuple[int, str, Any]] = []

        # Phase 2 — digest checks (local, no round trip) for keys whose
        # owner moved, then one batched probe per old owner for digest hits.
        if epochs.in_transition and pending:
            moved = []
            for key, old_id in zip(
                pending, self.router.route_many(pending, epochs.old)
            ):
                old_owner[key] = old_id
                if old_id != new_owner[key]:
                    moved.append(key)
            digest_hits = set()
            if moved:
                # One vectorized double-hash pass covers every digest check
                # in the round; the per-key KeyHashes carries the pair so
                # the old-owner probe (and any driver-side re-check) reuses
                # it instead of rehashing.
                h1s, h2s = digest_bases_many(moved)
                hashes_of = {
                    key: KeyHashes(key, digest_bases=(int(h1), int(h2)))
                    for key, h1, h2 in zip(moved, h1s, h2s)
                }
                grouped_digest: Dict[int, List[str]] = {}
                for key in moved:
                    grouped_digest.setdefault(old_owner[key], []).append(key)
                # Deliberately never chunked: a digest consult is a bit
                # test against an already-broadcast snapshot, not a
                # bounded multiget — the whole batch costs exactly one
                # CheckDigestMulti per ceding old owner.
                commands = tuple(
                    CheckDigestMulti(
                        server_id,
                        tuple(group),
                        tuple(hashes_of[key] for key in group),
                    )
                    for server_id, group in sorted(grouped_digest.items())
                )
                answers = yield commands
                for command, answer in zip(commands, answers):
                    if answer is SERVER_UNAVAILABLE:
                        # Digest unknown: forced miss, straight to the DB
                        # for the whole group.
                        for key in command.keys:
                            events.setdefault(key, []).append("digest")
                            forced.add(key)
                        continue
                    for key, hit in zip(command.keys, answer):
                        if hit:
                            digest_hits.add(key)
            if digest_hits:
                old_values, old_down = yield from self._probe_many(
                    [key for key in pending if key in digest_hits], old_owner
                )
                remaining = []
                for key in pending:
                    value = old_values.get(key)
                    if value is not None:
                        write_backs.append((new_owner[key], key, value))
                        outcomes[key] = self._finish(
                            key, value, FetchPath.HIT_OLD,
                            new_owner[key], old_owner[key],
                            events.get(key, ()), now=now,
                        )
                    else:
                        if key in old_down:
                            # Dead old owner: degraded DB fallback, not a
                            # false positive — no probe ever happened.
                            events.setdefault(key, []).append("probe_old")
                            forced.add(key)
                        elif key in digest_hits:
                            fallback[key] = FetchPath.FALSE_POSITIVE_DB
                        remaining.append(key)
                pending = remaining

        # Phase 3 — coalescing: wait behind in-flight leaders, then re-probe
        # the new owners of the keys whose leader completed (batched).
        if self.config.coalesce_misses and pending:
            answers = yield tuple(WaitForLeader(key=key) for key in pending)
            waited = [key for key, ok in zip(pending, answers) if ok]
            if waited:
                installed, wait_down = yield from self._probe_many(
                    waited, new_owner
                )
                for key in wait_down:
                    events.setdefault(key, []).append("probe_new")
                    forced.add(key)
                remaining = []
                for key in pending:
                    value = installed.get(key)
                    if value is not None:
                        outcomes[key] = self._finish(
                            key, value, FetchPath.COALESCED,
                            new_owner[key], old_owner[key],
                            events.get(key, ()), now=now,
                        )
                    else:
                        remaining.append(key)
                pending = remaining

        # Phase 4 — per-key database reads (the DB never batches misses
        # away; each distinct key costs one authoritative read).  Each
        # read is individually admission-checked: a batch straddling the
        # overload threshold sheds only its excess keys.
        if pending and self.admission is not None and now is not None:
            admitted: List[str] = []
            for key in pending:
                if self.admission.admit_db(now):
                    admitted.append(key)
                else:
                    outcomes[key] = self._finish(
                        key, None, FetchPath.SHED,
                        new_owner[key], old_owner[key],
                        events.get(key, ()), now=now,
                    )
            pending = admitted
        if pending:
            values = yield tuple(
                ReadDatabase(
                    announce_leader=self.config.coalesce_misses, key=key
                )
                for key in pending
            )
            for key, value in zip(pending, values):
                write_backs.append((new_owner[key], key, value))
                path = (
                    FetchPath.DEGRADED_DB if key in forced else fallback[key]
                )
                outcomes[key] = self._finish(
                    key, value, path, new_owner[key], old_owner[key],
                    events.get(key, ()), now=now,
                )

        # Phase 5 — write-backs, grouped into one pipelined command per
        # new owner (Alg. 2 line 12, amortized).
        if write_backs:
            grouped: Dict[int, List[Tuple[str, Any]]] = {}
            for server_id, key, value in write_backs:
                grouped.setdefault(server_id, []).append((key, value))
            commands = tuple(
                WriteBackMulti(server_id, chunk)
                for server_id, items in sorted(grouped.items())
                for chunk in _chunked(items, self.config.max_multiget_keys)
            )
            answers = yield commands
            for command, answer in zip(commands, answers):
                if answer is SERVER_UNAVAILABLE:
                    # Recorded, never fatal: the values were served already;
                    # the next fetch of these keys just misses again.
                    for key, _ in command.items:
                        self.stats.record_degraded("writeback")
                        outcome = outcomes.get(key)
                        if outcome is not None:
                            outcome.degraded = True
        return outcomes

    def _probe_many(
        self, keys: Sequence[str], owner_of: Dict[str, Any]
    ) -> Generator[CommandRound, Any, Tuple[Dict[str, Any], set]]:
        """One round of per-server multiget probes.

        Returns ``(hits, unavailable_keys)``: the values that hit, plus
        every key whose probe was answered :data:`SERVER_UNAVAILABLE` (no
        probe happened; the caller degrades those keys)."""
        grouped: Dict[int, List[str]] = {}
        for key in keys:
            grouped.setdefault(owner_of[key], []).append(key)
        commands = tuple(
            ProbeCacheMulti(server_id, chunk)
            for server_id, group in sorted(grouped.items())
            for chunk in _chunked(group, self.config.max_multiget_keys)
        )
        answers = yield commands
        hits: Dict[str, Any] = {}
        unavailable: set = set()
        for command, answer in zip(commands, answers):
            if answer is SERVER_UNAVAILABLE:
                unavailable.update(command.keys)
            elif answer is not SKIPPED and answer:
                hits.update(answer)
        return hits, unavailable

    def _finish(
        self,
        key: str,
        value: Any,
        path: FetchPath,
        new_server: int,
        old_server: Optional[int],
        events: Sequence[str] = (),
        now: Optional[float] = None,
    ) -> RetrievalOutcome:
        self.stats.record(path)
        for event in events:
            self.stats.record_degraded(event)
        if (
            now is not None
            and path is not FetchPath.HIT_LOCAL
            and path is not FetchPath.SHED
            and self.config.hot_key_cache
        ):
            # Admit hot keys at the same moment Alg. 2 writes back to the
            # new owner: the local copy is never older than the cache copy.
            self.armor.admit(key, value, now)
        return RetrievalOutcome(
            key=key, value=value, path=path,
            new_server=new_server, old_server=old_server,
            degraded=bool(events),
        )


class ReplicatedRetrievalEngine:
    """Section III-E replica reads with failover, as engine commands.

    Reads try the replica owners in ring order, skipping servers the
    cluster marked failed (excluded from routing) and servers the driver
    reports as not serving (answered :data:`SKIPPED`); only if every live
    replica misses does the request reach the database, after which every
    live replica owner is repopulated.

    The old-owner digest path of Algorithm 2 applies per ring; for clarity
    and because replication already covers the miss, this engine falls back
    to the database for keys whose *every* replica moved — strictly more
    conservative than the unreplicated fast path.
    """

    def __init__(
        self, router, config: Optional[RetrievalConfig] = None
    ) -> None:
        self.router = router
        #: engine options; replicated reads use ``max_multiget_keys`` plus
        #: the hot-key knobs (``hot_key_cache``/``d_choices``) — coalescing
        #: stays the unreplicated engine's concern — and the shared object
        #: keeps the drivers' config surface uniform.
        self.config = config if config is not None else RetrievalConfig()
        #: reads answered by a non-primary replica (failover events)
        self.failovers = 0
        #: reads that reached the database
        self.database_reads = 0
        #: reads refused by admission control (overload, not served)
        self.shed_reads = 0
        #: DB-path admission controller (same contract as
        #: :attr:`RetrievalEngine.admission`); ``None`` admits everything.
        self.admission = None
        self._armor: Optional[HotKeyArmor] = None

    @property
    def armor(self) -> HotKeyArmor:
        """The hot-key armor bundle (built lazily from the config knobs)."""
        if self._armor is None:
            self._armor = _armor_from_config(self.config)
        return self._armor

    def _plan(self, key: str, epochs, failed, hot: bool, now):
        """The read plan for *key* — load-aware only for elected hot keys.

        Cold keys keep strict replica-ring order (locality untouched); a
        sketch-elected hot key samples ``d_choices`` replica owners and
        reads from the least loaded (power-of-two choices at the default
        ``d_choices=2``), per the armor's driver-fed load EWMAs.
        """
        if hot and now is not None and self.config.d_choices > 1:
            return self.router.read_plan(
                key, epochs.new, exclude=failed,
                loads=self.armor.loads, d_choices=self.config.d_choices,
                now=now,
            )
        return self.router.read_plan(key, epochs.new, exclude=failed)

    def retrieve(
        self,
        key: str,
        epochs: RoutingEpochs,
        failed: FrozenSet[int] = frozenset(),
        now: Optional[float] = None,
    ) -> Generator[Command, Any, ReplicatedOutcome]:
        """Yield the commands that read *key* from the first live replica.

        With hot-key armor enabled (``config.hot_key_cache`` and the
        driver's clock passed as *now*), a sketch-elected key with a fresh
        local copy is served without yielding any command, and hot keys'
        probe order is the load-aware pick of
        :meth:`~repro.core.replication.ReplicatedProteusRouter.read_plan`.
        """
        armored = now is not None and self.config.hot_key_cache
        hot = False
        if armored:
            local = self.armor.lookup(key, now)
            hot = self.armor.is_hot(key)
            if local is not None:
                return ReplicatedOutcome(
                    key=key, value=local, served_by=None, probes=0,
                    touched_database=False, failover=False, local=True,
                )
        # One pass over the replica rings yields both the surviving probe
        # order and the ring-0 primary (an empty target list replaces the
        # read_targets RoutingError: every replica crashed, DB only).
        plan = self._plan(key, epochs, failed, hot, now)
        targets, primary = plan.targets, plan.primary
        value: Any = None
        served_by: Optional[int] = None
        probes = 0
        for target in targets:
            if armored:
                # Every arrival charges the load EWMA the d-choices pick
                # reads — cold-key traffic loads servers too.
                self.armor.loads.record_request(target, now)
            result = yield ProbeCache(target)
            if result is SKIPPED or result is SERVER_UNAVAILABLE:
                # Not serving / unreachable: no probe happened; the next
                # replica ring covers, exactly as for a routed-out server.
                continue
            probes += 1
            if result is not None:
                value = result
                served_by = target
                if target != primary:
                    # The ring-0 owner did not answer (crashed or missed):
                    # a replica covered for it.
                    self.failovers += 1
                break
        touched_db = value is None
        if touched_db:
            if (
                self.admission is not None
                and now is not None
                and not self.admission.admit_db(now)
            ):
                # Overload: shed instead of queueing on the database.
                # No write-backs either — there is no value to install.
                self.shed_reads += 1
                return ReplicatedOutcome(
                    key=key, value=None, served_by=None, probes=probes,
                    touched_database=False, failover=False, shed=True,
                )
            value = yield ReadDatabase()
            self.database_reads += 1
        # Repopulate every live replica owner that missed (write-through).
        for target in targets:
            if target != served_by:
                yield WriteBack(target, value)
        if armored:
            self.armor.admit(key, value, now)
        return ReplicatedOutcome(
            key=key, value=value, served_by=served_by, probes=probes,
            touched_database=touched_db,
            failover=served_by is not None and served_by != primary,
        )

    def retrieve_many(
        self,
        keys: Iterable[str],
        epochs: RoutingEpochs,
        failed: FrozenSet[int] = frozenset(),
        now: Optional[float] = None,
    ) -> Generator[CommandRound, Any, Dict[str, ReplicatedOutcome]]:
        """Batched replica reads: ring round *r* probes every round-*r*
        owner with one :class:`ProbeCacheMulti` per server.

        Same round protocol as :meth:`RetrievalEngine.retrieve_many`; the
        outcome map and the ``failovers`` / ``database_reads`` counters
        match running :meth:`retrieve` once per distinct key — including
        the hot-key armor behavior when *now* is passed.
        """
        ordered = list(dict.fromkeys(keys))
        if not ordered:
            return {}
        armored = now is not None and self.config.hot_key_cache
        local_hits: Dict[str, Any] = {}
        hot_keys: set = set()
        if armored:
            armor = self.armor
            remaining = []
            for key in ordered:
                local = armor.lookup(key, now)
                if armor.is_hot(key):
                    hot_keys.add(key)
                if local is not None:
                    local_hits[key] = local
                else:
                    remaining.append(key)
            ordered = remaining
        locals_only = {
            key: ReplicatedOutcome(
                key=key, value=value, served_by=None, probes=0,
                touched_database=False, failover=False, local=True,
            )
            for key, value in local_hits.items()
        }
        if not ordered:
            return locals_only
        targets_of: Dict[str, Tuple[int, ...]] = {}
        primary_of: Dict[str, int] = {}
        for key in ordered:
            plan = self._plan(key, epochs, failed, key in hot_keys, now)
            targets_of[key] = plan.targets
            primary_of[key] = plan.primary
        value_of: Dict[str, Any] = {}
        served_by: Dict[str, Optional[int]] = {key: None for key in ordered}
        probes = {key: 0 for key in ordered}

        ring_round = 0
        unresolved = list(ordered)
        while unresolved:
            grouped: Dict[int, List[str]] = {}
            for key in unresolved:
                targets = targets_of[key]
                if ring_round < len(targets):
                    grouped.setdefault(targets[ring_round], []).append(key)
                    if armored:
                        self.armor.loads.record_request(
                            targets[ring_round], now
                        )
            if not grouped:
                break
            commands = tuple(
                ProbeCacheMulti(server_id, chunk)
                for server_id, group in sorted(grouped.items())
                for chunk in _chunked(group, self.config.max_multiget_keys)
            )
            answers = yield commands
            for command, answer in zip(commands, answers):
                if answer is SKIPPED or answer is SERVER_UNAVAILABLE:
                    continue  # not serving / unreachable: no probe happened
                hits = answer or {}
                for key in command.keys:
                    probes[key] += 1
                    value = hits.get(key)
                    if value is not None:
                        value_of[key] = value
                        served_by[key] = command.server_id
                        if command.server_id != primary_of[key]:
                            self.failovers += 1
            unresolved = [key for key in unresolved if key not in value_of]
            ring_round += 1

        db_keys = [key for key in ordered if key not in value_of]
        shed_keys: set = set()
        if db_keys and self.admission is not None and now is not None:
            # Per-key admission, as in the unreplicated batch path: only
            # the excess over the overload threshold is shed.
            admitted = []
            for key in db_keys:
                if self.admission.admit_db(now):
                    admitted.append(key)
                else:
                    self.shed_reads += 1
                    shed_keys.add(key)
                    value_of[key] = None
            db_keys = admitted
        db_set = frozenset(db_keys)
        if db_keys:
            values = yield tuple(ReadDatabase(key=key) for key in db_keys)
            for key, value in zip(db_keys, values):
                value_of[key] = value
                self.database_reads += 1

        # Repopulate every live replica owner that missed (write-through),
        # one pipelined command per server.  Shed keys have no value to
        # install and are skipped.
        grouped_wb: Dict[int, List[Tuple[str, Any]]] = {}
        for key in ordered:
            if key in shed_keys:
                continue
            for target in targets_of[key]:
                if target != served_by[key]:
                    grouped_wb.setdefault(target, []).append(
                        (key, value_of[key])
                    )
        if grouped_wb:
            yield tuple(
                WriteBackMulti(server_id, chunk)
                for server_id, items in sorted(grouped_wb.items())
                for chunk in _chunked(items, self.config.max_multiget_keys)
            )
        if armored:
            for key in ordered:
                if key not in shed_keys:
                    self.armor.admit(key, value_of[key], now)
        outcomes = {
            key: ReplicatedOutcome(
                key=key,
                value=value_of[key],
                served_by=served_by[key],
                probes=probes[key],
                touched_database=key in db_set,
                failover=(
                    served_by[key] is not None
                    and served_by[key] != primary_of[key]
                ),
                shed=key in shed_keys,
            )
            for key in ordered
        }
        outcomes.update(locals_only)
        return outcomes


# ------------------------------------------------------- coalescing windows


class LeaderWindowRegistry:
    """Simulated-time bookkeeping for :class:`WaitForLeader`.

    Maps key -> completion time of the in-flight leader's DB fetch plus its
    write-back.  A follower whose clock is still inside the window jumps to
    its end; anything later is a plain miss.  (The asyncio driver uses
    futures instead — this registry is for drivers that measure time with a
    virtual clock.)
    """

    def __init__(self, max_entries: int = 4096) -> None:
        self.max_entries = max_entries
        self._windows: Dict[str, float] = {}

    def __len__(self) -> int:
        return len(self._windows)

    def leader_done(self, key: str, now: float) -> Optional[float]:
        """The open window's end for *key*, or ``None`` if closed/absent."""
        done = self._windows.get(key)
        if done is None or now >= done:
            return None
        return done

    def announce(self, key: str, done_at: float, now: float) -> None:
        """Publish a leader window for *key* closing at *done_at*.

        Prunes against the *current* clock ``now`` — not the request's
        start time — so a window that closed while this request was in
        flight does not survive an extra pass.
        """
        self._windows[key] = done_at
        if len(self._windows) > self.max_entries:
            # The map stays bounded by the concurrent-miss key count.
            self._windows = {
                k: t for k, t in self._windows.items() if t > now
            }
