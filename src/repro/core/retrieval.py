"""The sans-IO Algorithm-2 retrieval core (paper Section IV, "Date Retrieval").

Algorithm 2 — route to the new owner, consult the old owner's digest on a
miss during a transition, fall back to the database, write the value back —
is pure *decision* logic.  What differs between execution substrates is only
how each step is performed: the simulator charges latency-model samples
against a virtual clock, the live tier awaits memcached round trips over
TCP.  This module owns the decisions; drivers own the I/O.

:class:`RetrievalEngine.retrieve` is a generator that *yields commands* —
:class:`ProbeCache`, :class:`CheckDigest`, :class:`ReadDatabase`,
:class:`WriteBack`, :class:`WaitForLeader` — and receives each command's
result via ``send``.  A driver is a small loop::

    steps = engine.retrieve(key, epochs)
    result = None
    try:
        while True:
            command = steps.send(result)
            result = ...  # perform the I/O the command names
    except StopIteration as stop:
        outcome = stop.value  # RetrievalOutcome

Because both the simulated web tier (:class:`repro.web.frontend.WebServer`)
and the asyncio tier (:class:`repro.net.webtier.AsyncProteusFrontend`)
drive this one engine, the branch structure of Algorithm 2 — and therefore
the :class:`FetchPath` accounting — cannot drift between them.  The same
holds for the Section III-E replica-failover read path, encoded by
:class:`ReplicatedRetrievalEngine`.

Epochs come in as :class:`~repro.core.transition.RoutingEpochs` — the
simulator reads them from :meth:`repro.cache.cluster.CacheCluster.\
routing_epochs`, the live tier from its own
:class:`~repro.core.transition.TransitionManager` — so the engine never
needs to know where transition state lives.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Generator, Optional, Union

from repro.core.transition import RoutingEpochs
from repro.errors import RoutingError

__all__ = [
    "CheckDigest",
    "Command",
    "FetchPath",
    "FetchStats",
    "LeaderWindowRegistry",
    "ProbeCache",
    "ReadDatabase",
    "ReplicatedOutcome",
    "ReplicatedRetrievalEngine",
    "RetrievalEngine",
    "RetrievalOutcome",
    "SKIPPED",
    "WaitForLeader",
    "WriteBack",
]


# --------------------------------------------------------------------- paths


class FetchPath(str, enum.Enum):
    """Which branch of Algorithm 2 served the request.

    A ``str`` mix-in so members compare and hash like their wire labels
    (``FetchPath.HIT_NEW == "hit_new"``): simulator reports and live-tier
    reports key their counters identically and stay directly comparable.
    """

    #: hit at the authoritative (new-mapping) server — Alg. 2 line 3.
    HIT_NEW = "hit_new"
    #: digest hit, data pulled from the old owner — Alg. 2 line 7 ("hot").
    HIT_OLD = "hit_old"
    #: digest said yes but the old server missed — false positive, went to DB.
    FALSE_POSITIVE_DB = "false_positive_db"
    #: digest said no (cold data) or no transition in flight — went to DB.
    MISS_DB = "miss_db"
    #: coalesced behind an in-flight DB fetch for the same key (dog-pile
    #: protection, the paper's reference [12] scenario).
    COALESCED = "coalesced"


@dataclass
class FetchStats:
    """Per-path counters for one Algorithm-2 executor (web server)."""

    counts: Dict[FetchPath, int] = field(
        default_factory=lambda: {path: 0 for path in FetchPath}
    )

    def record(self, path: FetchPath) -> None:
        self.counts[path] += 1

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    @property
    def database_fraction(self) -> float:
        """Fraction of requests that reached the DB tier."""
        total = self.total
        if total == 0:
            return 0.0
        db = (
            self.counts[FetchPath.FALSE_POSITIVE_DB]
            + self.counts[FetchPath.MISS_DB]
        )
        return db / total

    def as_labels(self) -> Dict[str, int]:
        """Counters keyed by wire label (for JSON reports)."""
        return {path.value: count for path, count in self.counts.items()}


# ------------------------------------------------------------------ commands


@dataclass(frozen=True)
class ProbeCache:
    """``get`` the key from cache server *server_id*.

    Driver answer: the value, ``None`` on a miss, or :data:`SKIPPED` when
    the server is not serving requests (replicated reads only — the
    unreplicated path never probes a dead server).
    """

    server_id: int


@dataclass(frozen=True)
class CheckDigest:
    """Consult the broadcast digest of old owner *server_id* for the key.

    Driver answer: ``bool`` — membership according to the digest, ``False``
    when no digest was broadcast for that server (the safe fallback: skip
    the old owner, go to the database).
    """

    server_id: int


@dataclass(frozen=True)
class WaitForLeader:
    """If another request's DB fetch for this key is in flight, wait for it.

    Driver answer: ``True`` when a leader existed and the wait completed
    (the engine then re-probes the new owner), ``False`` when there was no
    leader or its window already closed (the engine reads the DB itself).
    """


@dataclass(frozen=True)
class ReadDatabase:
    """Read the key from the authoritative store (never misses).

    Driver answer: the value.  When ``announce_leader`` is set the driver
    must also publish this request as the key's in-flight leader so that
    concurrent misses can coalesce behind it (see :class:`WaitForLeader`).
    """

    announce_leader: bool = False


@dataclass(frozen=True)
class WriteBack:
    """Install *value* at cache server *server_id* (Alg. 2 line 12).

    Driver answer: ignored.  Replicated drivers silently skip write-backs
    to servers that are not serving requests.
    """

    server_id: int
    value: Any


Command = Union[ProbeCache, CheckDigest, WaitForLeader, ReadDatabase, WriteBack]

#: Driver answer to :class:`ProbeCache` meaning "server not serving; probe
#: did not happen" — distinct from ``None`` (a real miss).
SKIPPED = object()


# ------------------------------------------------------------------ outcomes


@dataclass
class RetrievalOutcome:
    """Decision summary of one Algorithm-2 retrieval (no timing — the
    driver owns clocks and wraps this in its own result type)."""

    key: str
    value: Any
    path: FetchPath
    new_server: int
    old_server: Optional[int] = None

    @property
    def touched_database(self) -> bool:
        return self.path in (FetchPath.FALSE_POSITIVE_DB, FetchPath.MISS_DB)


@dataclass
class ReplicatedOutcome:
    """Decision summary of one replicated (Section III-E) retrieval."""

    key: str
    value: Any
    #: replica owner that answered, or None if the DB did
    served_by: Optional[int]
    #: how many replica owners were actually probed before an answer
    probes: int
    touched_database: bool
    #: True when a non-primary replica covered for the ring-0 owner
    failover: bool


# ------------------------------------------------------------------- engines


class RetrievalEngine:
    """Algorithm 2 as a transport-agnostic state machine.

    Args:
        router: the deterministic routing strategy shared by every web
            server (the consistency objective: same router, same decisions).
        coalesce_misses: dog-pile protection — while a DB fetch for a key is
            in flight, later misses for the same key wait for it instead of
            issuing duplicate DB reads (the "memcache dog pile" the paper's
            introduction cites).  Off by default: the paper's evaluation
            runs without it, and the Fig. 9 spike depends on the dog pile
            being possible.
        stats: per-path counters; a fresh :class:`FetchStats` by default.
    """

    def __init__(
        self,
        router,
        coalesce_misses: bool = False,
        stats: Optional[FetchStats] = None,
    ) -> None:
        self.router = router
        self.coalesce_misses = coalesce_misses
        self.stats = stats if stats is not None else FetchStats()

    def retrieve(
        self, key: str, epochs: RoutingEpochs
    ) -> Generator[Command, Any, RetrievalOutcome]:
        """Yield the I/O commands that retrieve *key* under *epochs*.

        The data path (paper Algorithm 2):

        1. probe the *new* mapping's owner; return on hit.
        2. On a miss *during a transition*, check the *old* owner's
           broadcast digest.  On a digest hit, probe the old server (the
           key is "hot" there); a miss here is a digest false positive.
        3. Still nothing: wait behind an in-flight leader if coalescing,
           else read the database.
        4. Write the value into the new owner and return it.

        Property 1 (Section IV-A): only the *first* request for a hot key
        touches the old server; the write-back in step 4 makes every
        subsequent request a step-1 hit.  Property 2: after TTL seconds
        every hot key has migrated, so the old server can power off.
        """
        new_id = self.router.route(key, epochs.new)
        value = yield ProbeCache(new_id)
        if value is not None:
            return self._finish(key, value, FetchPath.HIT_NEW, new_id, None)

        old_id: Optional[int] = None
        path = FetchPath.MISS_DB
        if epochs.in_transition:
            old_id = self.router.route(key, epochs.old)
            if old_id != new_id and (yield CheckDigest(old_id)):
                value = yield ProbeCache(old_id)
                if value is not None:
                    yield WriteBack(new_id, value)
                    return self._finish(
                        key, value, FetchPath.HIT_OLD, new_id, old_id
                    )
                path = FetchPath.FALSE_POSITIVE_DB

        if self.coalesce_misses and (yield WaitForLeader()):
            # The leader's write-back has installed the value at the new
            # owner: one more cache probe instead of a DB read.  No
            # write-back of our own — rewriting would push the item's
            # creation time past later coalescing followers.
            value = yield ProbeCache(new_id)
            if value is not None:
                return self._finish(
                    key, value, FetchPath.COALESCED, new_id, old_id
                )

        value = yield ReadDatabase(announce_leader=self.coalesce_misses)
        yield WriteBack(new_id, value)
        return self._finish(key, value, path, new_id, old_id)

    def _finish(
        self,
        key: str,
        value: Any,
        path: FetchPath,
        new_server: int,
        old_server: Optional[int],
    ) -> RetrievalOutcome:
        self.stats.record(path)
        return RetrievalOutcome(
            key=key, value=value, path=path,
            new_server=new_server, old_server=old_server,
        )


class ReplicatedRetrievalEngine:
    """Section III-E replica reads with failover, as engine commands.

    Reads try the replica owners in ring order, skipping servers the
    cluster marked failed (excluded from routing) and servers the driver
    reports as not serving (answered :data:`SKIPPED`); only if every live
    replica misses does the request reach the database, after which every
    live replica owner is repopulated.

    The old-owner digest path of Algorithm 2 applies per ring; for clarity
    and because replication already covers the miss, this engine falls back
    to the database for keys whose *every* replica moved — strictly more
    conservative than the unreplicated fast path.
    """

    def __init__(self, router) -> None:
        self.router = router
        #: reads answered by a non-primary replica (failover events)
        self.failovers = 0
        #: reads that reached the database
        self.database_reads = 0

    def retrieve(
        self,
        key: str,
        epochs: RoutingEpochs,
        failed: FrozenSet[int] = frozenset(),
    ) -> Generator[Command, Any, ReplicatedOutcome]:
        """Yield the commands that read *key* from the first live replica."""
        try:
            targets = self.router.read_targets(key, epochs.new, exclude=failed)
        except RoutingError:
            targets = []  # every replica crashed: only the DB can answer
        primary = self.router.route(key, epochs.new)
        value: Any = None
        served_by: Optional[int] = None
        probes = 0
        for target in targets:
            result = yield ProbeCache(target)
            if result is SKIPPED:
                continue
            probes += 1
            if result is not None:
                value = result
                served_by = target
                if target != primary:
                    # The ring-0 owner did not answer (crashed or missed):
                    # a replica covered for it.
                    self.failovers += 1
                break
        touched_db = value is None
        if touched_db:
            value = yield ReadDatabase()
            self.database_reads += 1
        # Repopulate every live replica owner that missed (write-through).
        for target in targets:
            if target != served_by:
                yield WriteBack(target, value)
        return ReplicatedOutcome(
            key=key, value=value, served_by=served_by, probes=probes,
            touched_database=touched_db,
            failover=served_by is not None and served_by != primary,
        )


# ------------------------------------------------------- coalescing windows


class LeaderWindowRegistry:
    """Simulated-time bookkeeping for :class:`WaitForLeader`.

    Maps key -> completion time of the in-flight leader's DB fetch plus its
    write-back.  A follower whose clock is still inside the window jumps to
    its end; anything later is a plain miss.  (The asyncio driver uses
    futures instead — this registry is for drivers that measure time with a
    virtual clock.)
    """

    def __init__(self, max_entries: int = 4096) -> None:
        self.max_entries = max_entries
        self._windows: Dict[str, float] = {}

    def __len__(self) -> int:
        return len(self._windows)

    def leader_done(self, key: str, now: float) -> Optional[float]:
        """The open window's end for *key*, or ``None`` if closed/absent."""
        done = self._windows.get(key)
        if done is None or now >= done:
            return None
        return done

    def announce(self, key: str, done_at: float, now: float) -> None:
        """Publish a leader window for *key* closing at *done_at*.

        Prunes against the *current* clock ``now`` — not the request's
        start time — so a window that closed while this request was in
        flight does not survive an extra pass.
        """
        self._windows[key] = done_at
        if len(self._windows) > self.max_entries:
            # The map stays bounded by the concurrent-miss key count.
            self._windows = {
                k: t for k, t in self._windows.items() if t > now
            }
