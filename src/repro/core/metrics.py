"""Shared routing-quality metrics.

Small, dependency-light helpers used by the transition tests, the routing
shootout benchmark, and :mod:`repro.core.migration` — one definition of
"remap fraction" and "peak-to-average load" instead of ad-hoc counting at
every call site.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Union

from repro.errors import ConfigurationError

OwnerMap = Union[Sequence[int], Callable[[object], int]]


def remap_fraction(
    old: OwnerMap,
    new: OwnerMap,
    keys: Optional[Sequence] = None,
) -> float:
    """Fraction of keys whose owner differs between two routing epochs.

    ``old`` and ``new`` are either aligned owner sequences (element ``i``
    is the owner of key ``i`` under that epoch) or callables mapping a key
    to its owner, in which case ``keys`` must be given and both callables
    are applied to every key.  The paper's Section II lower bound for a
    balanced scheme on ``n -> n'`` is ``|n - n'| / max(n, n')``; Algorithm
    1 meets it exactly, other backends approach it.

    Returns the fraction in ``[0, 1]``.
    """
    if callable(old) or callable(new):
        if not (callable(old) and callable(new)):
            raise ConfigurationError(
                "old and new must both be sequences or both be callables"
            )
        if keys is None:
            raise ConfigurationError("keys is required when old/new are callables")
        old = [old(key) for key in keys]
        new = [new(key) for key in keys]
    else:
        if keys is not None and len(keys) != len(old):
            raise ConfigurationError(
                f"keys length {len(keys)} != owner sequence length {len(old)}"
            )
    if len(old) != len(new):
        raise ConfigurationError(
            f"owner sequences differ in length: {len(old)} != {len(new)}"
        )
    if len(old) == 0:
        raise ConfigurationError("cannot compute remap fraction of zero keys")
    try:  # vectorized when both sides are numpy-coercible integer arrays
        import numpy as np

        old_arr = np.asarray(old)
        new_arr = np.asarray(new)
        if old_arr.dtype.kind in "iu" and new_arr.dtype.kind in "iu":
            return float(np.mean(old_arr != new_arr))
    except Exception:  # pragma: no cover - fall back to the pure-python loop
        pass
    moved = sum(1 for before, after in zip(old, new) if before != after)
    return moved / len(old)


def peak_to_average(counts: Sequence[int]) -> float:
    """Peak-to-average load ratio over per-server request counts.

    ``1.0`` is perfect balance; the paper's Fig. 5 plots this ratio for
    Proteus versus random-vnode consistent hashing.  Servers with zero
    load still count toward the average (an idle server *is* imbalance).
    """
    if len(counts) == 0:
        raise ConfigurationError("cannot compute peak-to-average of zero servers")
    total = float(sum(counts))
    if total <= 0:
        raise ConfigurationError("total load must be positive")
    average = total / len(counts)
    return float(max(counts)) / average
