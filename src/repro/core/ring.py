"""Generic consistent-hashing ring with subset-aware lookups.

The ring stores virtual nodes as ``(position, server)`` pairs.  A key hashed
to position ``k`` is served by the owner of the first virtual-node position
*strictly greater than* ``k``, walking clockwise (wrapping at the ring size),
restricted to servers that are currently active.  Equivalently, a virtual
node at position ``p`` hosts the key range ``[pred(p), p)`` — the "host
range" between it and its direct predecessor (paper Section III-B).

With this convention a virtual node whose assigned host range is
``[start, start+len)`` sits at ring position ``start+len``, and when its
server powers off, the range drains to the next active virtual node
clockwise — which the Proteus placement (Algorithm 1) arranges to be exactly
the lender the range was borrowed from.

**Compiled lookups.**  :meth:`HashRing.lookup` re-resolves the
inactive-skip chain through a Python predicate on every call — fine for
construction-time queries, too slow for the per-request hot path
(Section I, objective 3 demands the decision be *efficient*).
:meth:`HashRing.compile` resolves the chain *once* into a
:class:`CompiledRingTable`: a flat sorted integer position array plus a
parallel pre-resolved owner array, so a lookup is one bisection with zero
Python callbacks and a batch of lookups is one vectorized
``np.searchsorted``.  :meth:`HashRing.compiled_for` caches one table per
``num_active`` prefix (an LRU over the old/new epochs in force).  The
compiled table is an equivalent *representation*, not a new policy: for
every integer position it returns exactly what :meth:`lookup` returns.

**Pluggable backends.**  :class:`RingBackend` abstracts the placement
strategy behind one contract — scalar :meth:`RingBackend.owner`, batched
:meth:`RingBackend.owners_many`, :meth:`RingBackend.compile`, and remap
metadata (:meth:`RingBackend.ceding_servers`,
:meth:`RingBackend.expected_remap_fraction`) for smooth transitions.  Three
backends ship:

* ``proteus`` — the paper's Algorithm 1 placement compiled into
  :class:`CompiledRingTable` (bit-identical to routing through
  :meth:`HashRing.compiled_for` directly);
* ``multiprobe`` — multi-probe consistent hashing (Appleton & O'Reilly):
  one node position per server, ``k`` probes per key, the probe landing
  closest (clockwise) to a node wins — O(k log n) lookups, O(n) table;
* ``power`` — power consistent hashing ("Fast Consistent Hashing in
  Constant Time"): draw uniformly from the next power of two above ``n``
  and deterministically redraw until the draw lands below ``n`` — O(1)
  expected lookups, **zero** table memory.

Every backend is deterministic across processes (all derived randomness
comes from :func:`_mix64` over blake2b key positions, never from
``PYTHONHASHSEED``-dependent state) and minimizes remap on resize within
its scheme's guarantees.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.core.registry import Registry
from repro.errors import ConfigurationError, RoutingError

Position = Union[int, Fraction]

#: Default key-space size for consistent-hashing rings.  2^32 matches common
#: memcached client libraries (e.g. spymemcached's ketama ring).
DEFAULT_RING_SIZE = 2 ** 32

#: Compiled tables cached per ring (one per recent ``num_active``); two
#: epochs are in force during a transition, the rest is headroom for
#: schedules that oscillate.
_COMPILED_CACHE_SIZE = 8


@dataclass(frozen=True, order=True)
class VirtualNode:
    """A virtual node: a ring position owned by a physical server."""

    position: Position
    server: int


class CompiledRingTable:
    """One activity set's lookup structure, resolved ahead of time.

    ``bounds[i]`` is ``ceil(position_i)`` of the ``i``-th virtual node (ring
    order) and ``owners[i]`` is the *pre-resolved* owner of the arc ending
    at that node — the first active server at or clockwise-after node ``i``.
    For an **integer** query position ``k`` (key hashes are integers),
    ``position_i > k  iff  ceil(position_i) > k``, and two distinct exact
    positions sharing a ceil admit no integer strictly between them, so
    ``bisect_right`` over the ceils lands on exactly the node the exact-
    arithmetic :meth:`HashRing.lookup` would pick — bit-identical owners
    with no :class:`~fractions.Fraction` comparisons on the hot path.
    """

    __slots__ = ("size", "_bounds", "_owners", "_bounds_np", "_owners_np")

    def __init__(self, size: int, bounds: List[int], owners: List[int]) -> None:
        self.size = size
        self._bounds = bounds
        self._owners = owners
        self._bounds_np = np.asarray(bounds, dtype=np.int64)
        self._owners_np = np.asarray(owners, dtype=np.int64)

    @classmethod
    def from_arrays(
        cls, size: int, bounds: np.ndarray, owners: np.ndarray
    ) -> "CompiledRingTable":
        """Build a table directly from int64 arrays, skipping the Python
        lists (``bisect`` works on ndarrays) — used by array-native
        backends where materializing millions-entry lists would double the
        memory footprint."""
        table = cls.__new__(cls)
        table.size = size
        table._bounds_np = np.ascontiguousarray(bounds, dtype=np.int64)
        table._owners_np = np.ascontiguousarray(owners, dtype=np.int64)
        table._bounds = table._bounds_np
        table._owners = table._owners_np
        return table

    @property
    def nbytes(self) -> int:
        """Resident table memory (the two flat int64 arrays)."""
        return int(self._bounds_np.nbytes + self._owners_np.nbytes)

    def __len__(self) -> int:
        return len(self._bounds)

    def lookup(self, position: int) -> int:
        """Owner of integer *position* — one bisection, no callbacks."""
        bounds = self._bounds
        index = bisect_right(bounds, position % self.size)
        if index == len(bounds):
            index = 0
        return self._owners[index]

    def lookup_many(self, positions: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`lookup` over an integer position array."""
        indexes = np.searchsorted(
            self._bounds_np, positions % self.size, side="right"
        )
        indexes[indexes == len(self._bounds)] = 0
        return self._owners_np[indexes]


class HashRing:
    """A consistent-hashing ring over positions ``[0, size)``.

    Virtual nodes may be added in any order; lookups are ``O(log V)`` via
    bisection plus a clockwise scan past inactive servers (``O(V)`` worst
    case, short in practice because inactive runs are short).  Request
    routing should go through :meth:`compiled_for`, which eliminates the
    scan entirely.

    Args:
        size: key-space size ``K``; positions live in ``[0, size)``.
    """

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ConfigurationError(f"ring size must be >= 1, got {size}")
        self.size = size
        self._nodes: List[VirtualNode] = []  # kept sorted by position
        self._positions: List[Position] = []  # parallel sorted positions
        self._compiled: Dict[int, CompiledRingTable] = {}  # num_active -> table

    # ----------------------------------------------------------- mutation

    def add(self, position: Position, server: int) -> None:
        """Place one virtual node for *server* at *position* (mod ring size)."""
        pos = position % self.size
        node = VirtualNode(pos, server)
        idx = bisect_right(self._positions, pos)
        # Reject exact duplicates: two vnodes at one position make ownership
        # order-dependent, which breaks cross-web-server consistency.
        if idx > 0 and self._positions[idx - 1] == pos:
            raise ConfigurationError(f"duplicate virtual node position {pos}")
        self._positions.insert(idx, pos)
        self._nodes.insert(idx, node)
        self._compiled.clear()

    def add_many(self, nodes: Sequence[VirtualNode]) -> None:
        """Bulk-add virtual nodes: one sort instead of V shifting inserts.

        Equivalent to calling :meth:`add` per node but ``O(V log V)``
        total instead of ``O(V^2)``, and atomic — a duplicate position
        raises :class:`~repro.errors.ConfigurationError` without mutating
        the ring.
        """
        if not nodes:
            return
        merged = list(self._nodes)
        merged.extend(
            VirtualNode(node.position % self.size, node.server)
            for node in nodes
        )
        merged.sort(key=lambda node: node.position)
        for left, right in zip(merged, merged[1:]):
            if left.position == right.position:
                raise ConfigurationError(
                    f"duplicate virtual node position {right.position}"
                )
        self._nodes = merged
        self._positions = [node.position for node in merged]
        self._compiled.clear()

    # ------------------------------------------------------------ queries

    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def nodes(self) -> List[VirtualNode]:
        """Virtual nodes in ring (position) order."""
        return list(self._nodes)

    def servers(self) -> List[int]:
        """Distinct server ids present on the ring, ascending."""
        return sorted({node.server for node in self._nodes})

    def lookup(
        self, position: Position, is_active: Optional[Callable[[int], bool]] = None
    ) -> int:
        """Return the server owning *position*, skipping inactive servers.

        Args:
            position: key position on the ring.
            is_active: predicate over server ids; ``None`` means all active.

        Raises:
            RoutingError: the ring is empty or no active server exists.
        """
        count = len(self._nodes)
        if count == 0:
            raise RoutingError("lookup on an empty ring")
        pos = position % self.size
        start = bisect_right(self._positions, pos)
        if is_active is None:
            return self._nodes[start % count].server
        for offset in range(count):
            node = self._nodes[(start + offset) % count]
            if is_active(node.server):
                return node.server
        raise RoutingError("no active server on the ring")

    # ---------------------------------------------------------- compiling

    def compile(
        self, is_active: Optional[Callable[[int], bool]] = None
    ) -> CompiledRingTable:
        """Resolve the inactive-skip chain once into a flat lookup table.

        The predicate is evaluated ``V`` times here and never again: the
        returned table answers every integer-position lookup with one
        bisection (or one ``searchsorted`` for a batch) and is bit-identical
        to :meth:`lookup` under the same predicate.

        Raises:
            RoutingError: the ring is empty or no active server exists.
        """
        count = len(self._nodes)
        if count == 0:
            raise RoutingError("lookup on an empty ring")
        if is_active is None:
            active = [True] * count
        else:
            active = [is_active(node.server) for node in self._nodes]
            if not any(active):
                raise RoutingError("no active server on the ring")
        owners = [0] * count
        # Two backward sweeps resolve "first active at/after i, wrapping":
        # the first seeds the wrap-around owner, the second fixes the tail.
        resolved: Optional[int] = None
        for _ in range(2):
            for index in range(count - 1, -1, -1):
                if active[index]:
                    resolved = self._nodes[index].server
                owners[index] = resolved  # type: ignore[assignment]
        bounds = [
            pos if isinstance(pos, int) else math.ceil(pos)
            for pos in self._positions
        ]
        return CompiledRingTable(self.size, bounds, owners)

    def compiled_for(self, num_active: int) -> CompiledRingTable:
        """The compiled table for the ``server < num_active`` activity set.

        Cached per ``num_active`` (bounded LRU; mutation clears it), so the
        two epochs in force during a transition each compile once and every
        subsequent ``route()`` is hash + bisect.
        """
        table = self._compiled.get(num_active)
        if table is None:
            table = self.compile(prefix_active(num_active))
            if len(self._compiled) >= _COMPILED_CACHE_SIZE:
                # Evict the oldest insertion (dicts preserve order).
                self._compiled.pop(next(iter(self._compiled)))
            self._compiled[num_active] = table
        return table

    def owned_lengths(
        self, is_active: Optional[Callable[[int], bool]] = None
    ) -> Dict[int, Position]:
        """Total host-range length owned by each active server.

        Sums, for every arc between consecutive virtual-node positions, the
        arc length into the bucket of the active server that owns it.  The
        values sum to the ring size; this is what the balance condition (BC)
        constrains to be equal across active servers.
        """
        count = len(self._nodes)
        if count == 0:
            return {}
        owned: Dict[int, Position] = {}
        positions = self._positions
        for idx in range(count):
            prev_pos = positions[idx - 1] if idx > 0 else positions[-1] - self.size
            arc = positions[idx] - prev_pos
            if arc == 0:
                continue
            owner = self._owner_from(idx, is_active)
            owned[owner] = owned.get(owner, 0) + arc
        return owned

    def _owner_from(
        self, index: int, is_active: Optional[Callable[[int], bool]]
    ) -> int:
        """Owner of the arc ending at vnode *index*: first active vnode at/after it."""
        count = len(self._nodes)
        if is_active is None:
            return self._nodes[index].server
        for offset in range(count):
            node = self._nodes[(index + offset) % count]
            if is_active(node.server):
                return node.server
        raise RoutingError("no active server on the ring")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HashRing(size={self.size}, vnodes={len(self._nodes)})"


def prefix_active(num_active: int) -> Callable[[int], bool]:
    """Activity predicate for the fixed provisioning order (Section III-A).

    Servers are numbered ``0..N-1`` in provisioning order (the paper's
    ``s1..sN``); the first ``num_active`` of them are on.
    """
    if num_active < 1:
        raise ConfigurationError(f"num_active must be >= 1, got {num_active}")
    return lambda server: server < num_active


# ---------------------------------------------------------------------------
# Deterministic derived randomness (splitmix64)
# ---------------------------------------------------------------------------

_M64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15
_MIX_C1 = 0xBF58476D1CE4E5B9
_MIX_C2 = 0x94D049BB133111EB


def _mix64(value: int) -> int:
    """The splitmix64 finalizer — a high-quality 64-bit integer mix.

    Pure integer arithmetic: identical on every process and platform (no
    ``PYTHONHASHSEED`` leak), and far cheaper than another blake2b round
    when a backend needs extra deterministic draws from a key position.
    """
    z = value & _M64
    z ^= z >> 30
    z = (z * _MIX_C1) & _M64
    z ^= z >> 27
    z = (z * _MIX_C2) & _M64
    return z ^ (z >> 31)


_GOLDEN_NP = np.uint64(_GOLDEN)
_MIX_C1_NP = np.uint64(_MIX_C1)
_MIX_C2_NP = np.uint64(_MIX_C2)
_SHIFT_30 = np.uint64(30)
_SHIFT_27 = np.uint64(27)
_SHIFT_31 = np.uint64(31)


def _mix64_np(values: np.ndarray) -> np.ndarray:
    """Vectorized :func:`_mix64` (uint64 wrap-around == scalar ``& _M64``)."""
    z = values.astype(np.uint64, copy=True)
    z ^= z >> _SHIFT_30
    z *= _MIX_C1_NP
    z ^= z >> _SHIFT_27
    z *= _MIX_C2_NP
    z ^= z >> _SHIFT_31
    return z


def _next_pow2(value: int) -> int:
    """Smallest power of two >= *value* (``value >= 1``)."""
    return 1 << (value - 1).bit_length()


# ---------------------------------------------------------------------------
# Pluggable ring backends
# ---------------------------------------------------------------------------


class RingBackend(ABC):
    """One placement strategy behind the routing stack.

    The contract every backend satisfies, for ``1 <= num_active <=
    num_servers`` and integer key positions in ``[0, ring_size)`` (the
    output of :func:`~repro.bloom.hashing.ring_position`):

    * :meth:`owner` — scalar lookup, returns a server id ``< num_active``;
    * :meth:`owners_many` — batched lookup, elementwise == :meth:`owner`;
    * :meth:`compile` — the per-``num_active`` lookup table (an object with
      ``lookup`` / ``lookup_many`` / ``nbytes``), cached per backend;
    * :meth:`ceding_servers` / :meth:`expected_remap_fraction` — remap
      metadata for smooth transitions: which old-epoch owners may lose
      keys (the digest-broadcast set) and what fraction of keys moves.

    Backends are deterministic across processes: two web servers built
    from the same configuration make identical decisions.
    """

    #: short factory name (``proteus`` / ``multiprobe`` / ``power``)
    name: str = "abstract"

    def __init__(self, num_servers: int, ring_size: int = DEFAULT_RING_SIZE) -> None:
        if num_servers < 1:
            raise ConfigurationError(
                f"num_servers must be >= 1, got {num_servers}"
            )
        if ring_size < 1:
            raise ConfigurationError(f"ring size must be >= 1, got {ring_size}")
        self.num_servers = num_servers
        self.ring_size = ring_size
        self._tables: Dict[int, object] = {}  # num_active -> compiled table

    def _check_active(self, num_active: int) -> None:
        if not 1 <= num_active <= self.num_servers:
            raise RoutingError(
                f"num_active must be in [1, {self.num_servers}], got {num_active}"
            )

    @abstractmethod
    def _compile(self, num_active: int):
        """Build the lookup table for *num_active* (uncached)."""

    def compile(self, num_active: int):
        """The compiled lookup table for *num_active*, LRU-cached.

        The returned object answers ``lookup(position) -> server`` and
        ``lookup_many(positions) -> np.ndarray`` and reports its resident
        memory as ``nbytes``.
        """
        self._check_active(num_active)
        table = self._tables.get(num_active)
        if table is None:
            table = self._compile(num_active)
            if len(self._tables) >= _COMPILED_CACHE_SIZE:
                # Evict the oldest insertion (dicts preserve order).
                self._tables.pop(next(iter(self._tables)))
            self._tables[num_active] = table
        return table

    def owner(self, position: int, num_active: int) -> int:
        """Server id serving integer key *position* with *num_active* on."""
        return int(self.compile(num_active).lookup(position))

    def owners_many(self, positions, num_active: int) -> np.ndarray:
        """Vectorized :meth:`owner` over an integer position array."""
        return self.compile(num_active).lookup_many(
            np.asarray(positions, dtype=np.int64)
        )

    def table_bytes(self, num_active: int) -> int:
        """Resident memory of the compiled table for *num_active*."""
        return int(self.compile(num_active).nbytes)

    def ceding_servers(self, n_old: int, n_new: int) -> List[int]:
        """Old-epoch owners that may lose keys in ``n_old -> n_new``.

        This is the digest-broadcast set for a smooth transition: the old
        owner of every remapped key is guaranteed to be in it.  Ring-style
        backends (vnode rings, multi-probe) share the consistent-hashing
        property that deactivating a server only reassigns keys *it*
        owned, so a scale-down cedes exactly the draining servers; a
        scale-up may steal from any old owner.  Backends without the
        property must override with a wider set.
        """
        self._check_active(n_old)
        self._check_active(n_new)
        if n_new < n_old:
            return list(range(n_new, n_old))
        return list(range(n_old))

    def expected_remap_fraction(self, n_old: int, n_new: int) -> Optional[float]:
        """Expected fraction of keys remapped by ``n_old -> n_new``.

        The Section II lower bound ``|Δn| / max(n, n')`` — exact for the
        ``proteus`` backend, and what the ring-style backends achieve in
        expectation (their per-transition value fluctuates with placement
        balance).  ``None`` when the backend cannot bound the transition
        (see :class:`PowerBackend` band crossings).
        """
        self._check_active(n_old)
        self._check_active(n_new)
        return abs(n_old - n_new) / max(n_old, n_new)


class VnodeBackend(RingBackend):
    """Adapter: an existing virtual-node :class:`HashRing` as a backend.

    Used by the Consistent scenario's random-vnode ring; compiled tables
    come straight from :meth:`HashRing.compiled_for`, so routing through
    the backend is bit-identical to routing through the ring.
    """

    name = "vnode"

    def __init__(self, ring: HashRing, num_servers: int) -> None:
        super().__init__(num_servers, ring.size)
        self.ring = ring

    def compile(self, num_active: int):
        # Reuse the ring's own cache — it is invalidated on ring mutation,
        # which this backend-level cache could not see.
        self._check_active(num_active)
        return self.ring.compiled_for(num_active)

    def _compile(self, num_active: int):  # pragma: no cover - compile() bypasses
        return self.ring.compiled_for(num_active)


class ProteusBackend(RingBackend):
    """The paper's Algorithm 1 placement as a backend.

    Bit-identical to the historical routing path: :meth:`compile` returns
    exactly :meth:`HashRing.compiled_for` of the placement's ring, so
    ``owner`` == ``compiled_for(n).lookup`` for every position.

    ``fast=True`` swaps the exact :class:`~fractions.Fraction` construction
    for the float64 simulation of Algorithm 1
    (:func:`~repro.core.placement.fast_virtual_positions`) — bench-scale
    fleets only (N in the thousands, where the exact build is hours of
    bignum arithmetic).  Vnode positions may differ from the exact build by
    sub-integer rounding; balance/remap metrics are indistinguishable.
    """

    name = "proteus"

    def __init__(
        self,
        num_servers: int,
        ring_size: int = DEFAULT_RING_SIZE,
        fast: bool = False,
    ) -> None:
        super().__init__(num_servers, ring_size)
        self.fast = fast
        # Function-level imports: placement.py imports this module.
        if fast:
            from repro.core.placement import fast_virtual_positions

            self._vpos, self._vsrv = fast_virtual_positions(num_servers, ring_size)
            self.placement = None
            self.ring: Optional[HashRing] = None
        else:
            from repro.core.placement import place_virtual_nodes

            self.placement = place_virtual_nodes(num_servers, ring_size)
            self.ring = self.placement.build_ring()

    def compile(self, num_active: int):
        if self.ring is not None:
            self._check_active(num_active)
            return self.ring.compiled_for(num_active)
        return super().compile(num_active)

    def _compile(self, num_active: int):
        # Fast mode: the compiled table for prefix n is simply the vnodes
        # of servers < n (inactive arcs drain to the next active vnode
        # clockwise, which is by construction the next surviving bound).
        mask = self._vsrv < num_active
        return CompiledRingTable.from_arrays(
            self.ring_size, self._vpos[mask], self._vsrv[mask]
        )


#: Paper-recommended probe count for multi-probe consistent hashing: ~21
#: probes give a ~1.1 peak-to-average load ratio.
DEFAULT_PROBES = 21

#: Hash salt for multi-probe node positions (disjoint from the key salts
#: used by :func:`~repro.bloom.hashing.ring_position`).
_MP_NODE_SALT = 0x3A5


class _MultiProbeTable:
    """Compiled lookup for one ``num_active`` prefix of the multi-probe ring."""

    __slots__ = ("size", "_pos", "_srv", "_probes", "_pos_list")

    def __init__(
        self, size: int, pos: np.ndarray, srv: np.ndarray, probes: int
    ) -> None:
        self.size = size
        self._pos = pos  # node positions, sorted ascending
        self._srv = srv  # parallel server ids
        self._probes = probes
        self._pos_list = pos.tolist()  # python ints for scalar bisect

    @property
    def nbytes(self) -> int:
        return int(self._pos.nbytes + self._srv.nbytes)

    def __len__(self) -> int:
        return len(self._pos_list)

    def lookup(self, position: int) -> int:
        """Owner of *position*: the node closest clockwise to any probe."""
        size = self.size
        p = position % size
        pos_list = self._pos_list
        count = len(pos_list)
        best_dist: Optional[int] = None
        best_idx = 0
        for j in range(1, self._probes + 1):
            probe = _mix64((p + j * _GOLDEN) & _M64) % size
            idx = bisect_left(pos_list, probe)
            if idx == count:
                idx = 0
            dist = (pos_list[idx] - probe) % size
            if best_dist is None or dist < best_dist:
                best_dist = dist
                best_idx = idx
        return int(self._srv[best_idx])

    def lookup_many(self, positions: np.ndarray) -> np.ndarray:
        p = (positions % self.size).astype(np.uint64)
        salts = np.arange(1, self._probes + 1, dtype=np.uint64) * _GOLDEN_NP
        probes = (
            _mix64_np(p[:, None] + salts[None, :]) % np.uint64(self.size)
        ).astype(np.int64)
        idx = np.searchsorted(self._pos, probes, side="left")
        idx[idx == len(self._pos)] = 0
        dist = (self._pos[idx] - probes) % self.size
        # argmin returns the first minimum — same tie-break as the scalar
        # loop's strict-< comparison in probe order.
        best = np.argmin(dist, axis=1)
        rows = np.arange(len(p))
        return self._srv[idx[rows, best]]


class MultiProbeBackend(RingBackend):
    """Multi-probe consistent hashing (Appleton & O'Reilly, arXiv:1505.00062).

    One node position per server — an O(n) flat table, no vnode storage.
    A key probes the ring ``k`` times (deterministic splitmix64 draws from
    its position) and is owned by the node closest clockwise to any probe;
    ``k ~ 21`` keeps the peak-to-average load near 1.1 without the
    O(n log n) vnode memory of classic consistent hashing.  Deactivating a
    server only reassigns keys whose winning probe pointed at it, so
    resize remap stays at ~``|Δn| / max(n, n')``.
    """

    name = "multiprobe"

    def __init__(
        self,
        num_servers: int,
        ring_size: int = DEFAULT_RING_SIZE,
        probes: int = DEFAULT_PROBES,
    ) -> None:
        super().__init__(num_servers, ring_size)
        if probes < 1:
            raise ConfigurationError(f"probes must be >= 1, got {probes}")
        self.probes = probes
        from repro.bloom.hashing import stable_hash64

        used = set()
        node_positions: List[int] = []
        for server in range(num_servers):
            attempt = 0
            while True:
                pos = (
                    stable_hash64(f"mp-node:{server}:{attempt}", salt=_MP_NODE_SALT)
                    % ring_size
                )
                if pos not in used:
                    break
                attempt += 1  # deterministic re-draw chain on collision
            used.add(pos)
            node_positions.append(pos)
        #: node position of server ``i`` at index ``i`` (provisioning order)
        self._node_pos = np.asarray(node_positions, dtype=np.int64)

    def _compile(self, num_active: int) -> _MultiProbeTable:
        pos = self._node_pos[:num_active]
        order = np.argsort(pos, kind="stable")
        return _MultiProbeTable(
            self.ring_size, pos[order], order.astype(np.int64), self.probes
        )


class _PowerTable:
    """Tableless lookup for one ``num_active`` of power consistent hashing."""

    __slots__ = ("size", "num_active", "_mask")

    def __init__(self, size: int, num_active: int) -> None:
        self.size = size
        self.num_active = num_active
        self._mask = _next_pow2(num_active) - 1

    @property
    def nbytes(self) -> int:
        return 0  # no resident table — three ints of state

    def lookup(self, position: int) -> int:
        p = position % self.size
        n = self.num_active
        mask = self._mask
        draw = 0
        while True:
            u = _mix64((p + draw * _GOLDEN) & _M64) & mask
            if u < n:
                return u
            draw += 1

    def lookup_many(self, positions: np.ndarray) -> np.ndarray:
        p = (positions % self.size).astype(np.uint64)
        n = np.uint64(self.num_active)
        mask = np.uint64(self._mask)
        owners = np.zeros(len(p), dtype=np.int64)
        pending = np.arange(len(p))
        draw = 0
        while pending.size:
            # numpy *scalar* uint64 arithmetic warns on wrap; compute the
            # per-draw offset with python ints (the array add wraps silently,
            # matching the scalar path's ``& _M64``).
            offset = np.uint64((draw * _GOLDEN) & _M64)
            u = _mix64_np(p[pending] + offset) & mask
            ok = u < n
            owners[pending[ok]] = u[ok].astype(np.int64)
            pending = pending[~ok]
            draw += 1
        return owners


class PowerBackend(RingBackend):
    """Power consistent hashing — O(1) expected time, zero table memory.

    Let ``m`` be the next power of two >= ``n``.  A key's owner is the
    first draw below ``n`` in its deterministic splitmix64 draw sequence
    over ``[0, m)`` (derived from the key position).  Since ``m < 2n``,
    each draw accepts with probability > 1/2 — O(1) expected draws —
    and balance is exactly ``1/n`` per server.

    Resizing within one power-of-two band keeps every accepted draw below
    ``min(n, n')`` unchanged, so remap is exactly ``|Δn| / max(n, n')``
    (the Section II lower bound).  Crossing a band changes ``m`` and
    reshuffles the draw sequences — roughly half the keys move, and
    :meth:`ceding_servers` widens to every old owner.  That caveat is the
    price of O(1) lookups with zero state.
    """

    name = "power"

    def _compile(self, num_active: int) -> _PowerTable:
        return _PowerTable(self.ring_size, num_active)

    def ceding_servers(self, n_old: int, n_new: int) -> List[int]:
        self._check_active(n_old)
        self._check_active(n_new)
        if n_new < n_old and _next_pow2(n_new) == _next_pow2(n_old):
            return list(range(n_new, n_old))
        # Band crossing (or scale-up): any old owner may cede keys.
        return list(range(n_old))

    def expected_remap_fraction(self, n_old: int, n_new: int) -> Optional[float]:
        self._check_active(n_old)
        self._check_active(n_new)
        if _next_pow2(n_old) == _next_pow2(n_new):
            return abs(n_old - n_new) / max(n_old, n_new)
        return None  # band crossing: unbounded by the scheme


#: The ring-backend registry: name -> backend class.  ``make_backend``,
#: the CLI's ``--ring-backend`` choices, and the experiment-config
#: validation all derive from it, so registering a backend here is the
#: single step to plug a new placement scheme in everywhere.
RING_BACKENDS: "Registry[RingBackend]" = Registry("ring backend")
RING_BACKENDS.register("proteus", ProteusBackend)
RING_BACKENDS.register("multiprobe", MultiProbeBackend)
RING_BACKENDS.register("power", PowerBackend)

#: Names accepted by :func:`make_backend` (derived from the registry).
BACKEND_NAMES = RING_BACKENDS.names


def make_backend(
    name: str, num_servers: int, ring_size: int = DEFAULT_RING_SIZE, **kwargs
) -> RingBackend:
    """Factory keyed by backend name (case-insensitive).

    ``proteus`` accepts ``fast=True`` (bench-scale float placement);
    ``multiprobe`` accepts ``probes=<k>``.  Thin wrapper over
    :data:`RING_BACKENDS`.
    """
    return RING_BACKENDS.create(name, num_servers, ring_size, **kwargs)
