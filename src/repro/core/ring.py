"""Generic consistent-hashing ring with subset-aware lookups.

The ring stores virtual nodes as ``(position, server)`` pairs.  A key hashed
to position ``k`` is served by the owner of the first virtual-node position
*strictly greater than* ``k``, walking clockwise (wrapping at the ring size),
restricted to servers that are currently active.  Equivalently, a virtual
node at position ``p`` hosts the key range ``[pred(p), p)`` — the "host
range" between it and its direct predecessor (paper Section III-B).

With this convention a virtual node whose assigned host range is
``[start, start+len)`` sits at ring position ``start+len``, and when its
server powers off, the range drains to the next active virtual node
clockwise — which the Proteus placement (Algorithm 1) arranges to be exactly
the lender the range was borrowed from.

**Compiled lookups.**  :meth:`HashRing.lookup` re-resolves the
inactive-skip chain through a Python predicate on every call — fine for
construction-time queries, too slow for the per-request hot path
(Section I, objective 3 demands the decision be *efficient*).
:meth:`HashRing.compile` resolves the chain *once* into a
:class:`CompiledRingTable`: a flat sorted integer position array plus a
parallel pre-resolved owner array, so a lookup is one bisection with zero
Python callbacks and a batch of lookups is one vectorized
``np.searchsorted``.  :meth:`HashRing.compiled_for` caches one table per
``num_active`` prefix (an LRU over the old/new epochs in force).  The
compiled table is an equivalent *representation*, not a new policy: for
every integer position it returns exactly what :meth:`lookup` returns.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.errors import ConfigurationError, RoutingError

Position = Union[int, Fraction]

#: Compiled tables cached per ring (one per recent ``num_active``); two
#: epochs are in force during a transition, the rest is headroom for
#: schedules that oscillate.
_COMPILED_CACHE_SIZE = 8


@dataclass(frozen=True, order=True)
class VirtualNode:
    """A virtual node: a ring position owned by a physical server."""

    position: Position
    server: int


class CompiledRingTable:
    """One activity set's lookup structure, resolved ahead of time.

    ``bounds[i]`` is ``ceil(position_i)`` of the ``i``-th virtual node (ring
    order) and ``owners[i]`` is the *pre-resolved* owner of the arc ending
    at that node — the first active server at or clockwise-after node ``i``.
    For an **integer** query position ``k`` (key hashes are integers),
    ``position_i > k  iff  ceil(position_i) > k``, and two distinct exact
    positions sharing a ceil admit no integer strictly between them, so
    ``bisect_right`` over the ceils lands on exactly the node the exact-
    arithmetic :meth:`HashRing.lookup` would pick — bit-identical owners
    with no :class:`~fractions.Fraction` comparisons on the hot path.
    """

    __slots__ = ("size", "_bounds", "_owners", "_bounds_np", "_owners_np")

    def __init__(self, size: int, bounds: List[int], owners: List[int]) -> None:
        self.size = size
        self._bounds = bounds
        self._owners = owners
        self._bounds_np = np.asarray(bounds, dtype=np.int64)
        self._owners_np = np.asarray(owners, dtype=np.int64)

    def __len__(self) -> int:
        return len(self._bounds)

    def lookup(self, position: int) -> int:
        """Owner of integer *position* — one bisection, no callbacks."""
        bounds = self._bounds
        index = bisect_right(bounds, position % self.size)
        if index == len(bounds):
            index = 0
        return self._owners[index]

    def lookup_many(self, positions: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`lookup` over an integer position array."""
        indexes = np.searchsorted(
            self._bounds_np, positions % self.size, side="right"
        )
        indexes[indexes == len(self._bounds)] = 0
        return self._owners_np[indexes]


class HashRing:
    """A consistent-hashing ring over positions ``[0, size)``.

    Virtual nodes may be added in any order; lookups are ``O(log V)`` via
    bisection plus a clockwise scan past inactive servers (``O(V)`` worst
    case, short in practice because inactive runs are short).  Request
    routing should go through :meth:`compiled_for`, which eliminates the
    scan entirely.

    Args:
        size: key-space size ``K``; positions live in ``[0, size)``.
    """

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ConfigurationError(f"ring size must be >= 1, got {size}")
        self.size = size
        self._nodes: List[VirtualNode] = []  # kept sorted by position
        self._positions: List[Position] = []  # parallel sorted positions
        self._compiled: Dict[int, CompiledRingTable] = {}  # num_active -> table

    # ----------------------------------------------------------- mutation

    def add(self, position: Position, server: int) -> None:
        """Place one virtual node for *server* at *position* (mod ring size)."""
        pos = position % self.size
        node = VirtualNode(pos, server)
        idx = bisect_right(self._positions, pos)
        # Reject exact duplicates: two vnodes at one position make ownership
        # order-dependent, which breaks cross-web-server consistency.
        if idx > 0 and self._positions[idx - 1] == pos:
            raise ConfigurationError(f"duplicate virtual node position {pos}")
        self._positions.insert(idx, pos)
        self._nodes.insert(idx, node)
        self._compiled.clear()

    def add_many(self, nodes: Sequence[VirtualNode]) -> None:
        """Bulk-add virtual nodes: one sort instead of V shifting inserts.

        Equivalent to calling :meth:`add` per node but ``O(V log V)``
        total instead of ``O(V^2)``, and atomic — a duplicate position
        raises :class:`~repro.errors.ConfigurationError` without mutating
        the ring.
        """
        if not nodes:
            return
        merged = list(self._nodes)
        merged.extend(
            VirtualNode(node.position % self.size, node.server)
            for node in nodes
        )
        merged.sort(key=lambda node: node.position)
        for left, right in zip(merged, merged[1:]):
            if left.position == right.position:
                raise ConfigurationError(
                    f"duplicate virtual node position {right.position}"
                )
        self._nodes = merged
        self._positions = [node.position for node in merged]
        self._compiled.clear()

    # ------------------------------------------------------------ queries

    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def nodes(self) -> List[VirtualNode]:
        """Virtual nodes in ring (position) order."""
        return list(self._nodes)

    def servers(self) -> List[int]:
        """Distinct server ids present on the ring, ascending."""
        return sorted({node.server for node in self._nodes})

    def lookup(
        self, position: Position, is_active: Optional[Callable[[int], bool]] = None
    ) -> int:
        """Return the server owning *position*, skipping inactive servers.

        Args:
            position: key position on the ring.
            is_active: predicate over server ids; ``None`` means all active.

        Raises:
            RoutingError: the ring is empty or no active server exists.
        """
        count = len(self._nodes)
        if count == 0:
            raise RoutingError("lookup on an empty ring")
        pos = position % self.size
        start = bisect_right(self._positions, pos)
        if is_active is None:
            return self._nodes[start % count].server
        for offset in range(count):
            node = self._nodes[(start + offset) % count]
            if is_active(node.server):
                return node.server
        raise RoutingError("no active server on the ring")

    # ---------------------------------------------------------- compiling

    def compile(
        self, is_active: Optional[Callable[[int], bool]] = None
    ) -> CompiledRingTable:
        """Resolve the inactive-skip chain once into a flat lookup table.

        The predicate is evaluated ``V`` times here and never again: the
        returned table answers every integer-position lookup with one
        bisection (or one ``searchsorted`` for a batch) and is bit-identical
        to :meth:`lookup` under the same predicate.

        Raises:
            RoutingError: the ring is empty or no active server exists.
        """
        count = len(self._nodes)
        if count == 0:
            raise RoutingError("lookup on an empty ring")
        if is_active is None:
            active = [True] * count
        else:
            active = [is_active(node.server) for node in self._nodes]
            if not any(active):
                raise RoutingError("no active server on the ring")
        owners = [0] * count
        # Two backward sweeps resolve "first active at/after i, wrapping":
        # the first seeds the wrap-around owner, the second fixes the tail.
        resolved: Optional[int] = None
        for _ in range(2):
            for index in range(count - 1, -1, -1):
                if active[index]:
                    resolved = self._nodes[index].server
                owners[index] = resolved  # type: ignore[assignment]
        bounds = [
            pos if isinstance(pos, int) else math.ceil(pos)
            for pos in self._positions
        ]
        return CompiledRingTable(self.size, bounds, owners)

    def compiled_for(self, num_active: int) -> CompiledRingTable:
        """The compiled table for the ``server < num_active`` activity set.

        Cached per ``num_active`` (bounded LRU; mutation clears it), so the
        two epochs in force during a transition each compile once and every
        subsequent ``route()`` is hash + bisect.
        """
        table = self._compiled.get(num_active)
        if table is None:
            table = self.compile(prefix_active(num_active))
            if len(self._compiled) >= _COMPILED_CACHE_SIZE:
                # Evict the oldest insertion (dicts preserve order).
                self._compiled.pop(next(iter(self._compiled)))
            self._compiled[num_active] = table
        return table

    def owned_lengths(
        self, is_active: Optional[Callable[[int], bool]] = None
    ) -> Dict[int, Position]:
        """Total host-range length owned by each active server.

        Sums, for every arc between consecutive virtual-node positions, the
        arc length into the bucket of the active server that owns it.  The
        values sum to the ring size; this is what the balance condition (BC)
        constrains to be equal across active servers.
        """
        count = len(self._nodes)
        if count == 0:
            return {}
        owned: Dict[int, Position] = {}
        positions = self._positions
        for idx in range(count):
            prev_pos = positions[idx - 1] if idx > 0 else positions[-1] - self.size
            arc = positions[idx] - prev_pos
            if arc == 0:
                continue
            owner = self._owner_from(idx, is_active)
            owned[owner] = owned.get(owner, 0) + arc
        return owned

    def _owner_from(
        self, index: int, is_active: Optional[Callable[[int], bool]]
    ) -> int:
        """Owner of the arc ending at vnode *index*: first active vnode at/after it."""
        count = len(self._nodes)
        if is_active is None:
            return self._nodes[index].server
        for offset in range(count):
            node = self._nodes[(index + offset) % count]
            if is_active(node.server):
                return node.server
        raise RoutingError("no active server on the ring")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HashRing(size={self.size}, vnodes={len(self._nodes)})"


def prefix_active(num_active: int) -> Callable[[int], bool]:
    """Activity predicate for the fixed provisioning order (Section III-A).

    Servers are numbered ``0..N-1`` in provisioning order (the paper's
    ``s1..sN``); the first ``num_active`` of them are on.
    """
    if num_active < 1:
        raise ConfigurationError(f"num_active must be >= 1, got {num_active}")
    return lambda server: server < num_active
