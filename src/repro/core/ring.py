"""Generic consistent-hashing ring with subset-aware lookups.

The ring stores virtual nodes as ``(position, server)`` pairs.  A key hashed
to position ``k`` is served by the owner of the first virtual-node position
*strictly greater than* ``k``, walking clockwise (wrapping at the ring size),
restricted to servers that are currently active.  Equivalently, a virtual
node at position ``p`` hosts the key range ``[pred(p), p)`` — the "host
range" between it and its direct predecessor (paper Section III-B).

With this convention a virtual node whose assigned host range is
``[start, start+len)`` sits at ring position ``start+len``, and when its
server powers off, the range drains to the next active virtual node
clockwise — which the Proteus placement (Algorithm 1) arranges to be exactly
the lender the range was borrowed from.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.errors import ConfigurationError, RoutingError

Position = Union[int, Fraction]


@dataclass(frozen=True, order=True)
class VirtualNode:
    """A virtual node: a ring position owned by a physical server."""

    position: Position
    server: int


class HashRing:
    """A consistent-hashing ring over positions ``[0, size)``.

    Virtual nodes may be added in any order; lookups are ``O(log V)`` via
    bisection plus a clockwise scan past inactive servers (``O(V)`` worst
    case, short in practice because inactive runs are short).

    Args:
        size: key-space size ``K``; positions live in ``[0, size)``.
    """

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ConfigurationError(f"ring size must be >= 1, got {size}")
        self.size = size
        self._nodes: List[VirtualNode] = []  # kept sorted by position
        self._positions: List[Position] = []  # parallel sorted positions

    # ----------------------------------------------------------- mutation

    def add(self, position: Position, server: int) -> None:
        """Place one virtual node for *server* at *position* (mod ring size)."""
        pos = position % self.size
        node = VirtualNode(pos, server)
        idx = bisect_right(self._positions, pos)
        # Reject exact duplicates: two vnodes at one position make ownership
        # order-dependent, which breaks cross-web-server consistency.
        if idx > 0 and self._positions[idx - 1] == pos:
            raise ConfigurationError(f"duplicate virtual node position {pos}")
        self._positions.insert(idx, pos)
        self._nodes.insert(idx, node)

    def add_many(self, nodes: Sequence[VirtualNode]) -> None:
        """Bulk-add virtual nodes."""
        for node in nodes:
            self.add(node.position, node.server)

    # ------------------------------------------------------------ queries

    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def nodes(self) -> List[VirtualNode]:
        """Virtual nodes in ring (position) order."""
        return list(self._nodes)

    def servers(self) -> List[int]:
        """Distinct server ids present on the ring, ascending."""
        return sorted({node.server for node in self._nodes})

    def lookup(
        self, position: Position, is_active: Optional[Callable[[int], bool]] = None
    ) -> int:
        """Return the server owning *position*, skipping inactive servers.

        Args:
            position: key position on the ring.
            is_active: predicate over server ids; ``None`` means all active.

        Raises:
            RoutingError: the ring is empty or no active server exists.
        """
        count = len(self._nodes)
        if count == 0:
            raise RoutingError("lookup on an empty ring")
        pos = position % self.size
        start = bisect_right(self._positions, pos)
        if is_active is None:
            return self._nodes[start % count].server
        for offset in range(count):
            node = self._nodes[(start + offset) % count]
            if is_active(node.server):
                return node.server
        raise RoutingError("no active server on the ring")

    def owned_lengths(
        self, is_active: Optional[Callable[[int], bool]] = None
    ) -> Dict[int, Position]:
        """Total host-range length owned by each active server.

        Sums, for every arc between consecutive virtual-node positions, the
        arc length into the bucket of the active server that owns it.  The
        values sum to the ring size; this is what the balance condition (BC)
        constrains to be equal across active servers.
        """
        count = len(self._nodes)
        if count == 0:
            return {}
        owned: Dict[int, Position] = {}
        positions = self._positions
        for idx in range(count):
            prev_pos = positions[idx - 1] if idx > 0 else positions[-1] - self.size
            arc = positions[idx] - prev_pos
            if arc == 0:
                continue
            owner = self._owner_from(idx, is_active)
            owned[owner] = owned.get(owner, 0) + arc
        return owned

    def _owner_from(
        self, index: int, is_active: Optional[Callable[[int], bool]]
    ) -> int:
        """Owner of the arc ending at vnode *index*: first active vnode at/after it."""
        count = len(self._nodes)
        if is_active is None:
            return self._nodes[index].server
        for offset in range(count):
            node = self._nodes[(index + offset) % count]
            if is_active(node.server):
                return node.server
        raise RoutingError("no active server on the ring")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HashRing(size={self.size}, vnodes={len(self._nodes)})"


def prefix_active(num_active: int) -> Callable[[int], bool]:
    """Activity predicate for the fixed provisioning order (Section III-A).

    Servers are numbered ``0..N-1`` in provisioning order (the paper's
    ``s1..sN``); the first ``num_active`` of them are on.
    """
    if num_active < 1:
        raise ConfigurationError(f"num_active must be >= 1, got {num_active}")
    return lambda server: server < num_active
