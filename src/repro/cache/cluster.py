"""The cache tier: N servers under a fixed provisioning order + transitions.

Glue between :class:`~repro.cache.server.CacheServer` instances, a routing
strategy, and the :class:`~repro.core.transition.TransitionManager`.  The
provisioning actuator calls :meth:`scale_to`; web servers call
:meth:`routing_epochs` — the epoch source for the sans-IO
:class:`~repro.core.retrieval.RetrievalEngine` they drive — and
:meth:`server` on every request.

Power-state choreography for a scale-down ``n -> n-k`` (Section IV):

1. digests of all old owners are snapshotted and attached to the transition;
2. servers ``n-k .. n-1`` enter ``DRAINING`` — still answering gets so web
   servers can pull "hot" data out on demand;
3. when the TTL window closes (:meth:`finalize_expired`, scheduled by the
   driver), draining servers power off and lose their contents.

For a scale-up, the incoming servers power on cold immediately; the old
owners' digests cover the drain window so remapped keys are fetched from
their previous owners instead of the database.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.bloom.bloom import BloomFilter
from repro.bloom.config import BloomConfig
from repro.cache.eviction import make_policy
from repro.cache.server import CacheServer, PowerState
from repro.core.router import Router
from repro.core.transition import (
    DEFAULT_TTL,
    RoutingEpochs,
    Transition,
    TransitionManager,
)
from repro.errors import ConfigurationError, TransitionError


class CacheCluster:
    """N cache servers, the first ``initial_active`` powered on.

    Args:
        router: the scenario's routing strategy (its ``num_servers`` fixes N).
        capacity_bytes: per-server store capacity.
        initial_active: ``n(0)``; servers beyond it start OFF.
        ttl: drain-window length for transitions.
        bloom_config: digest sizing shared by all servers.
        eviction: eviction policy name (``lru``/``fifo``/``random``/``none``).
    """

    def __init__(
        self,
        router: Router,
        capacity_bytes: Optional[int] = None,
        initial_active: Optional[int] = None,
        ttl: float = DEFAULT_TTL,
        bloom_config: Optional[BloomConfig] = None,
        eviction: str = "lru",
    ) -> None:
        self.router = router
        num_servers = router.num_servers
        if initial_active is None:
            initial_active = num_servers
        if not 1 <= initial_active <= num_servers:
            raise ConfigurationError(
                f"initial_active must be in [1, {num_servers}], got {initial_active}"
            )
        self.servers: List[CacheServer] = [
            CacheServer(
                server_id=i,
                capacity_bytes=capacity_bytes,
                bloom_config=bloom_config,
                policy=make_policy(eviction, seed=i),
                initially_on=i < initial_active,
            )
            for i in range(num_servers)
        ]
        self.transitions = TransitionManager(initial_active, ttl=ttl)
        self.transitions.on_power_off.append(self._power_off_servers)
        self._failed: set = set()

    # ------------------------------------------------------------- access

    @property
    def num_servers(self) -> int:
        return len(self.servers)

    @property
    def active_count(self) -> int:
        """Committed active count (the new mapping's ``n``)."""
        return self.transitions.active_count

    def server(self, server_id: int) -> CacheServer:
        """Server by provisioning-order index."""
        return self.servers[server_id]

    def routing_epochs(self, now: float) -> RoutingEpochs:
        """What web servers need to route a request at time *now*.

        This is the retrieval engine's epoch source: drivers pass the
        returned :class:`~repro.core.transition.RoutingEpochs` straight to
        :meth:`repro.core.retrieval.RetrievalEngine.retrieve`.
        """
        return self.transitions.routing_counts(now)

    def powered_servers(self) -> List[int]:
        """Ids of servers currently drawing active/idle power (ON or DRAINING)."""
        return [s.server_id for s in self.servers if s.state.serves_requests]

    # ------------------------------------------------------------ scaling

    def collect_digests(self, server_ids: List[int]) -> Dict[int, BloomFilter]:
        """Snapshot digests of *server_ids* (the broadcast payload)."""
        return {
            sid: self.servers[sid].snapshot_digest()
            for sid in server_ids
            if self.servers[sid].state.serves_requests
        }

    def scale_to(
        self, n_new: int, now: float, ttl: Optional[float] = None
    ) -> Optional[Transition]:
        """Begin a smooth transition to *n_new* active servers.

        Digests are snapshot from the *ceding* servers — the old-mapping
        owners the router's backend reports may lose keys
        (:meth:`~repro.core.router.Router.ceding_servers`).  For Proteus
        scale-down that is exactly the draining servers; backends without
        tighter metadata fall back to every old owner.  Scale-up powers the
        incoming servers on cold before routing flips; scale-down marks the
        outgoing servers DRAINING until the TTL closes.  *ttl* overrides
        the cluster's configured drain window for this transition only
        (an adaptive TTL policy sizes it per transition).

        Returns the started :class:`Transition`, or ``None`` for a no-op.
        """
        if not 1 <= n_new <= self.num_servers:
            raise TransitionError(
                f"n_new must be in [1, {self.num_servers}], got {n_new}"
            )
        n_old = self.transitions.active_count
        if n_new == n_old:
            return None
        # Reject overlap BEFORE touching power states: powering servers on
        # first and then failing begin() would flush a draining server.
        if self.transitions.in_transition(now):
            raise TransitionError(
                "previous drain window still open; finalize it first"
            )
        ceding = self.router.ceding_servers(n_old, n_new)
        digests = self.collect_digests(ceding)
        if n_new > n_old:
            for sid in range(n_old, n_new):
                # A crashed machine ignores the actuator's power-on; it
                # joins the fleet only after repair_server().
                if sid not in self._failed:
                    self.servers[sid].power_on(now)
        transition = self.transitions.begin(
            n_new, now, digests=digests, ceding=ceding, ttl=ttl
        )
        if transition is not None and transition.is_scale_down:
            for sid in transition.draining_servers():
                # Crashed servers are already OFF; they have nothing to drain.
                if self.servers[sid].state is PowerState.ON:
                    self.servers[sid].begin_drain()
        return transition

    def abrupt_scale_to(self, n_new: int, now: float) -> Optional[Transition]:
        """Change the active count with *no* smooth transition.

        This is how the Naive and Consistent scenarios (Table II) provision:
        no digest broadcast, no drain window — outgoing servers power off on
        the spot (losing their hot data), incoming servers power on cold,
        and routing flips instantly.  Misses caused by the remap go straight
        to the database; this is the Fig. 9 spike mechanism.
        """
        if not 1 <= n_new <= self.num_servers:
            raise TransitionError(
                f"n_new must be in [1, {self.num_servers}], got {n_new}"
            )
        n_old = self.transitions.active_count
        if n_new == n_old:
            return None
        if self.transitions.in_transition(now):
            raise TransitionError(
                "previous drain window still open; finalize it first"
            )
        if n_new > n_old:
            for sid in range(n_old, n_new):
                if sid not in self._failed:
                    self.servers[sid].power_on(now)
        transition = self.transitions.begin(n_new, now, digests=None)
        if transition is not None and transition.is_scale_down:
            for sid in transition.draining_servers():
                if self.servers[sid].state is PowerState.ON:
                    self.servers[sid].begin_drain()
            self.transitions.force_complete(now)  # powers them off immediately
        elif transition is not None:
            self.transitions.force_complete(now)
        return transition

    def finalize_expired(self, now: float) -> None:
        """Close any drain window whose TTL has passed (drives power-off)."""
        self.transitions.current(now)  # auto-expires and fires callbacks

    def _power_off_servers(self, server_ids: List[int], when: float) -> None:
        for sid in server_ids:
            self.servers[sid].power_off(when)

    # ------------------------------------------------------------ failures

    def fail_server(self, server_id: int, now: float) -> None:
        """Crash *server_id*: immediate power-off, cache contents lost.

        Section III-A's argument for a fixed provisioning order: crashes
        lose the in-cache data regardless of scheme, so the fixed order
        needs no special-casing — routing still targets the server, and
        fault tolerance comes from replication
        (:class:`~repro.core.replication.ReplicatedProteusRouter` +
        :class:`~repro.web.replicated.ReplicatedWebServer`), which skips
        failed servers at read time.
        """
        server = self.servers[server_id]
        if server.state is PowerState.OFF:
            return
        server.power_off(now)
        self._failed.add(server_id)

    def repair_server(self, server_id: int, now: float) -> None:
        """Bring a crashed server back, cold."""
        if server_id in self._failed:
            self._failed.discard(server_id)
            if server_id < self.active_count:
                self.servers[server_id].power_on(now)

    def failed_servers(self) -> frozenset:
        """Ids of currently-crashed servers."""
        return frozenset(self._failed)

    # ------------------------------------------------------------ metrics

    def per_server_requests(self) -> List[int]:
        """Cumulative request counters per server (Fig. 5 load metric)."""
        return [s.stats.requests for s in self.servers]

    def total_hit_ratio(self) -> float:
        """Aggregate cache hit ratio across the tier."""
        gets = sum(s.stats.gets for s in self.servers)
        hits = sum(s.stats.hits for s in self.servers)
        return hits / gets if gets else 0.0
