"""Memcached-like cache substrate with digest hooks (paper Section V-A3)."""

from repro.cache.eviction import (
    ClockPolicy,
    EvictionPolicy,
    FIFOPolicy,
    LRUPolicy,
    NoEvictionPolicy,
    RandomPolicy,
    SegmentedLRUPolicy,
    make_policy,
)
from repro.cache.chunking import (
    ChunkingCacheAdapter,
    piece_key,
    routing_key,
)
from repro.cache.item import DEFAULT_ITEM_SIZE, CacheItem
from repro.cache.server import CacheServer, PowerState
from repro.cache.slabs import SlabAllocator, SlabStore
from repro.cache.stats import CacheStats
from repro.cache.store import (
    REASON_DELETE,
    REASON_EVICT,
    REASON_EXPIRE,
    REASON_FLUSH,
    KeyValueStore,
)

__all__ = [
    "CacheItem",
    "ChunkingCacheAdapter",
    "piece_key",
    "routing_key",
    "ClockPolicy",
    "SegmentedLRUPolicy",
    "SlabAllocator",
    "SlabStore",
    "CacheServer",
    "CacheStats",
    "DEFAULT_ITEM_SIZE",
    "EvictionPolicy",
    "FIFOPolicy",
    "KeyValueStore",
    "LRUPolicy",
    "NoEvictionPolicy",
    "PowerState",
    "RandomPolicy",
    "REASON_DELETE",
    "REASON_EVICT",
    "REASON_EXPIRE",
    "REASON_FLUSH",
    "make_policy",
]
