"""A memcached-like cache server with a built-in counting-Bloom-filter digest.

Mirrors the paper's modified memcached (Section V-A3): the digest is updated
exactly when an item is linked into or unlinked from the store, so it is
consistent with cache contents by construction.  The server also models the
power states the provisioning actuator drives it through::

    OFF --power_on--> ON --begin_drain--> DRAINING --power_off--> OFF

``DRAINING`` is the TTL window of a scale-down transition: the server still
answers gets (web servers pull "hot" data out of it on demand) but is no
longer an owner under the new mapping.  Powering off *loses all cached
data* — the whole point of the paper is making that loss unobservable.
"""

from __future__ import annotations

import enum
from typing import Any, Optional

from repro.bloom.bloom import BloomFilter
from repro.bloom.config import BloomConfig, optimal_config
from repro.bloom.counting import CountingBloomFilter
from repro.cache.eviction import EvictionPolicy
from repro.cache.item import CacheItem
from repro.cache.store import KeyValueStore
from repro.errors import CacheError, ConfigurationError


class PowerState(enum.Enum):
    """Where a server is in the provisioning lifecycle."""

    OFF = "off"
    ON = "on"
    DRAINING = "draining"

    @property
    def serves_requests(self) -> bool:
        """ON and DRAINING servers answer requests; OFF servers do not."""
        return self is not PowerState.OFF


class CacheServer:
    """One cache server: bounded store + digest + power state.

    Args:
        server_id: position in the fixed provisioning order (0-based).
        capacity_bytes: store capacity; the paper's Fig. 6 sweeps this.
        bloom_config: digest sizing; defaults to the Section IV-B optimum for
            the capacity-implied key count (``capacity / item_size``).
        policy: eviction policy (default LRU).
        initially_on: start in ``ON`` (the common case for ``s_1..s_{n(0)}``).
    """

    def __init__(
        self,
        server_id: int,
        capacity_bytes: Optional[int] = None,
        bloom_config: Optional[BloomConfig] = None,
        policy: Optional[EvictionPolicy] = None,
        initially_on: bool = True,
        default_item_size: int = 4096,
    ) -> None:
        if server_id < 0:
            raise ConfigurationError(f"server_id must be >= 0, got {server_id}")
        self.server_id = server_id
        self.store = KeyValueStore(
            capacity_bytes=capacity_bytes,
            policy=policy,
            default_item_size=default_item_size,
        )
        if bloom_config is None:
            expected_keys = (
                max(1024, capacity_bytes // default_item_size)
                if capacity_bytes
                else 100_000
            )
            bloom_config = optimal_config(expected_keys)
        self.bloom_config = bloom_config
        self.digest: CountingBloomFilter = bloom_config.build()
        self.store.link_hooks.append(self._on_link)
        self.store.unlink_hooks.append(self._on_unlink)
        self.state = PowerState.ON if initially_on else PowerState.OFF
        #: count of power cycles (each implies a cold cache)
        self.power_cycles = 0

    # ------------------------------------------------------------- digest

    def _on_link(self, item: CacheItem) -> None:
        self.digest.add(item.key)

    def _on_unlink(self, item: CacheItem, reason: str) -> None:
        self.digest.remove(item.key)

    def snapshot_digest(self) -> BloomFilter:
        """The ``SET_BLOOM_FILTER`` + ``BLOOM_FILTER`` flow in one call.

        Collapses the counting filter to a plain bit array — the payload a
        web server receives at the start of a transition (a few hundred KB
        at most; the paper quotes "a few KB each" for its settings).
        """
        return self.digest.snapshot()

    # ---------------------------------------------------------------- ops

    def _require_power(self) -> None:
        if not self.state.serves_requests:
            raise CacheError(f"server {self.server_id} is powered off")

    def get(self, key: str, now: float = 0.0) -> Optional[Any]:
        """Value for *key* or ``None``; raises :class:`CacheError` when OFF."""
        self._require_power()
        return self.store.get(key, now)

    def get_many(self, keys, now: float = 0.0) -> dict:
        """Values for every key that hits (multiget, one call; misses are
        absent from the map); raises :class:`CacheError` when OFF."""
        self._require_power()
        hits = {}
        for key in keys:
            value = self.store.get(key, now)
            if value is not None:
                hits[key] = value
        return hits

    def set(
        self,
        key: str,
        value: Any,
        now: float = 0.0,
        size: Optional[int] = None,
        ttl: Optional[float] = None,
    ) -> None:
        """Store *key*; raises :class:`CacheError` when OFF."""
        self._require_power()
        self.store.set(key, value, now=now, size=size, ttl=ttl)

    def delete(self, key: str, now: float = 0.0) -> bool:
        """Delete *key*; raises :class:`CacheError` when OFF."""
        self._require_power()
        return self.store.delete(key, now)

    @property
    def stats(self):
        """Operation counters (see :class:`repro.cache.stats.CacheStats`)."""
        return self.store.stats

    # --------------------------------------------------------- power state

    def power_on(self, now: float = 0.0) -> None:
        """Bring the server up *cold*: empty store, empty digest."""
        if self.state is PowerState.ON:
            return
        self.store.flush()
        self.digest.clear()
        self.state = PowerState.ON
        self.power_cycles += 1

    def begin_drain(self) -> None:
        """Enter the TTL drain window of a scale-down transition."""
        if self.state is not PowerState.ON:
            raise CacheError(
                f"server {self.server_id} cannot drain from state {self.state}"
            )
        self.state = PowerState.DRAINING

    def power_off(self, now: float = 0.0) -> None:
        """Shut down, discarding all cached data and the digest."""
        if self.state is PowerState.OFF:
            return
        self.store.flush()
        self.digest.clear()
        self.state = PowerState.OFF
        self.power_cycles += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CacheServer(id={self.server_id}, state={self.state.value}, "
            f"items={len(self.store)})"
        )
