"""Eviction policies.

The paper explicitly makes *no* assumption about the eviction strategy
("LRU, fixed expiration duration, etc." — Section II); the digest only has
to stay consistent with the store's contents.  We therefore make the policy
pluggable and provide the common ones.  A policy tracks key order metadata
only; the store owns the items and calls back on link/access/unlink.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from collections import OrderedDict
from typing import Dict, List

from repro.errors import CapacityError


class EvictionPolicy(ABC):
    """Chooses which key to evict when the store is full."""

    @abstractmethod
    def on_link(self, key: str) -> None:
        """A new key entered the store."""

    @abstractmethod
    def on_access(self, key: str) -> None:
        """An existing key was read or overwritten."""

    @abstractmethod
    def on_unlink(self, key: str) -> None:
        """A key left the store (delete, expiry, or eviction)."""

    @abstractmethod
    def victim(self) -> str:
        """Key to evict next.

        Raises:
            CapacityError: the policy tracks no keys (nothing to evict) or
                refuses to evict.
        """

    def reset(self) -> None:
        """Forget all keys (server flush / power cycle)."""
        raise NotImplementedError


class LRUPolicy(EvictionPolicy):
    """Least-recently-used — memcached's default, used for Fig. 6."""

    def __init__(self) -> None:
        self._order: "OrderedDict[str, None]" = OrderedDict()

    def on_link(self, key: str) -> None:
        self._order[key] = None

    def on_access(self, key: str) -> None:
        self._order.move_to_end(key)

    def on_unlink(self, key: str) -> None:
        self._order.pop(key, None)

    def victim(self) -> str:
        if not self._order:
            raise CapacityError("LRU policy has no keys to evict")
        return next(iter(self._order))

    def reset(self) -> None:
        self._order.clear()


class FIFOPolicy(EvictionPolicy):
    """First-in-first-out: eviction order is insertion order, accesses ignored."""

    def __init__(self) -> None:
        self._order: "OrderedDict[str, None]" = OrderedDict()

    def on_link(self, key: str) -> None:
        self._order[key] = None

    def on_access(self, key: str) -> None:
        pass  # FIFO ignores recency

    def on_unlink(self, key: str) -> None:
        self._order.pop(key, None)

    def victim(self) -> str:
        if not self._order:
            raise CapacityError("FIFO policy has no keys to evict")
        return next(iter(self._order))

    def reset(self) -> None:
        self._order.clear()


class RandomPolicy(EvictionPolicy):
    """Evict a uniformly random key (seeded, so runs stay reproducible)."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)
        self._keys: List[str] = []
        self._index: Dict[str, int] = {}

    def on_link(self, key: str) -> None:
        self._index[key] = len(self._keys)
        self._keys.append(key)

    def on_access(self, key: str) -> None:
        pass  # random eviction ignores recency

    def on_unlink(self, key: str) -> None:
        idx = self._index.pop(key, None)
        if idx is None:
            return
        last = self._keys.pop()
        if last != key:
            self._keys[idx] = last
            self._index[last] = idx

    def victim(self) -> str:
        if not self._keys:
            raise CapacityError("random policy has no keys to evict")
        return self._rng.choice(self._keys)

    def reset(self) -> None:
        self._keys.clear()
        self._index.clear()


class ClockPolicy(EvictionPolicy):
    """CLOCK (second-chance): an LRU approximation with O(1) accesses.

    Keys sit on a circular list with a reference bit; access sets the bit,
    the clock hand sweeps, clearing bits until it finds an unreferenced key.
    Real caches use CLOCK when LRU's list maintenance is too hot; having it
    here lets the hit-ratio experiments quantify the approximation gap.
    """

    def __init__(self) -> None:
        self._keys: List[str] = []
        self._index: Dict[str, int] = {}
        self._referenced: List[bool] = []
        self._hand = 0

    def on_link(self, key: str) -> None:
        self._index[key] = len(self._keys)
        self._keys.append(key)
        self._referenced.append(True)

    def on_access(self, key: str) -> None:
        idx = self._index.get(key)
        if idx is not None:
            self._referenced[idx] = True

    def on_unlink(self, key: str) -> None:
        idx = self._index.pop(key, None)
        if idx is None:
            return
        last_key = self._keys.pop()
        last_ref = self._referenced.pop()
        if last_key != key:
            self._keys[idx] = last_key
            self._referenced[idx] = last_ref
            self._index[last_key] = idx
        if self._hand >= len(self._keys):
            self._hand = 0

    def victim(self) -> str:
        if not self._keys:
            raise CapacityError("CLOCK policy has no keys to evict")
        # Sweep at most two full turns: the first clears bits, the second
        # must find an unreferenced key.
        for _ in range(2 * len(self._keys)):
            key = self._keys[self._hand]
            if self._referenced[self._hand]:
                self._referenced[self._hand] = False
                self._hand = (self._hand + 1) % len(self._keys)
            else:
                return key
        return self._keys[self._hand]  # pragma: no cover - unreachable

    def reset(self) -> None:
        self._keys.clear()
        self._index.clear()
        self._referenced.clear()
        self._hand = 0


class SegmentedLRUPolicy(EvictionPolicy):
    """SLRU: probation + protected segments (scan resistance).

    New keys enter *probation*; a second access promotes to *protected*
    (bounded to ``protected_fraction`` of tracked keys, demoting the oldest
    protected key back to probation's MRU end).  Victims come from
    probation's LRU end, so one sequential scan cannot flush the hot set —
    the failure mode plain LRU has on trace replays with crawler traffic.
    """

    def __init__(self, protected_fraction: float = 0.8) -> None:
        if not 0.0 < protected_fraction < 1.0:
            raise ValueError(
                f"protected_fraction must be in (0, 1), got {protected_fraction}"
            )
        self.protected_fraction = protected_fraction
        self._probation: "OrderedDict[str, None]" = OrderedDict()
        self._protected: "OrderedDict[str, None]" = OrderedDict()

    def _tracked(self) -> int:
        return len(self._probation) + len(self._protected)

    def on_link(self, key: str) -> None:
        self._probation[key] = None

    def on_access(self, key: str) -> None:
        if key in self._protected:
            self._protected.move_to_end(key)
            return
        if key not in self._probation:
            return
        del self._probation[key]
        self._protected[key] = None
        limit = max(1, int(self._tracked() * self.protected_fraction))
        while len(self._protected) > limit:
            demoted, _ = self._protected.popitem(last=False)
            self._probation[demoted] = None  # back at probation MRU

    def on_unlink(self, key: str) -> None:
        self._probation.pop(key, None)
        self._protected.pop(key, None)

    def victim(self) -> str:
        if self._probation:
            return next(iter(self._probation))
        if self._protected:
            return next(iter(self._protected))
        raise CapacityError("SLRU policy has no keys to evict")

    def reset(self) -> None:
        self._probation.clear()
        self._protected.clear()


class NoEvictionPolicy(EvictionPolicy):
    """Never evict: inserting past capacity raises :class:`CapacityError`.

    Useful in tests and for modelling stores where overflow must be visible.
    """

    def on_link(self, key: str) -> None:
        pass

    def on_access(self, key: str) -> None:
        pass

    def on_unlink(self, key: str) -> None:
        pass

    def victim(self) -> str:
        raise CapacityError("eviction disabled")

    def reset(self) -> None:
        pass


def make_policy(name: str, seed: int = 0) -> EvictionPolicy:
    """Policy factory: ``lru`` (default), ``fifo``, ``clock``, ``slru``, ``random``, ``none``."""
    table = {
        "lru": LRUPolicy,
        "fifo": FIFOPolicy,
        "clock": ClockPolicy,
        "slru": SegmentedLRUPolicy,
        "none": NoEvictionPolicy,
    }
    lowered = name.strip().lower()
    if lowered == "random":
        return RandomPolicy(seed=seed)
    try:
        return table[lowered]()
    except KeyError:
        raise ValueError(f"unknown eviction policy {name!r}") from None
