"""Slab memory allocation, memcached-style.

Real memcached does not allocate per item: memory is carved into fixed-size
**pages** (1 MB), each assigned to a **slab class** of a fixed chunk size;
chunk sizes follow a geometric ladder (growth factor 1.25 by default).  An
item occupies one chunk of the smallest class that fits it, so memory
overhead is bounded by the growth factor, and eviction is per-class LRU.

The paper's fixed-object-size assumption (Section II) makes a single class
sufficient for its experiments, but a credible memcached substrate needs the
allocator: the Fig. 6 hit-ratio curve shifts when per-item overhead is
accounted, and variable-size workloads (real Wikipedia pages) only make
sense with classes.  :class:`SlabAllocator` plugs into
:class:`~repro.cache.store.KeyValueStore` as an accounting layer; the
`SlabStore` convenience class wires both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import CapacityError, ConfigurationError

DEFAULT_PAGE_SIZE = 1 << 20   # 1 MB, memcached's default
DEFAULT_MIN_CHUNK = 96        # smallest chunk (item header + tiny value)
DEFAULT_GROWTH = 1.25         # chunk-size ladder factor


@dataclass
class SlabClass:
    """One chunk-size class: its pages and free-chunk accounting."""

    class_id: int
    chunk_size: int
    pages: int = 0
    used_chunks: int = 0

    @property
    def chunks_per_page(self) -> int:
        return max(1, DEFAULT_PAGE_SIZE // self.chunk_size)

    @property
    def total_chunks(self) -> int:
        return self.pages * self.chunks_per_page

    @property
    def free_chunks(self) -> int:
        return self.total_chunks - self.used_chunks


class SlabAllocator:
    """Chunked memory accounting with a geometric class ladder.

    Args:
        capacity_bytes: total memory budget (whole pages are carved from it).
        page_size: bytes per page.
        min_chunk: smallest chunk size.
        growth: ladder factor between consecutive classes.
        max_item_size: largest storable item (defaults to one page).
    """

    def __init__(
        self,
        capacity_bytes: int,
        page_size: int = DEFAULT_PAGE_SIZE,
        min_chunk: int = DEFAULT_MIN_CHUNK,
        growth: float = DEFAULT_GROWTH,
        max_item_size: Optional[int] = None,
    ) -> None:
        if capacity_bytes < page_size:
            raise ConfigurationError(
                f"capacity {capacity_bytes} smaller than one page {page_size}"
            )
        if growth <= 1.0:
            raise ConfigurationError(f"growth must be > 1, got {growth}")
        if min_chunk < 1:
            raise ConfigurationError(f"min_chunk must be >= 1, got {min_chunk}")
        self.page_size = page_size
        self.capacity_pages = capacity_bytes // page_size
        self.max_item_size = max_item_size or page_size
        self.classes: List[SlabClass] = []
        size = min_chunk
        class_id = 0
        while size < self.max_item_size:
            self.classes.append(SlabClass(class_id, size))
            size = max(size + 1, int(size * growth))
            class_id += 1
        self.classes.append(SlabClass(class_id, self.max_item_size))
        self._pages_assigned = 0

    # ------------------------------------------------------------- queries

    @property
    def num_classes(self) -> int:
        return len(self.classes)

    @property
    def pages_free(self) -> int:
        """Pages not yet assigned to any class."""
        return self.capacity_pages - self._pages_assigned

    def class_for(self, item_size: int) -> SlabClass:
        """The smallest class whose chunks fit *item_size*.

        Raises:
            CapacityError: the item exceeds ``max_item_size``.
        """
        if item_size < 0:
            raise ConfigurationError(f"item_size must be >= 0, got {item_size}")
        for slab_class in self.classes:
            if item_size <= slab_class.chunk_size:
                return slab_class
        raise CapacityError(
            f"item of {item_size} bytes exceeds max item size "
            f"{self.max_item_size}"
        )

    def overhead_factor(self, item_size: int) -> float:
        """Chunk bytes per payload byte for items of *item_size*."""
        if item_size <= 0:
            return 1.0
        return self.class_for(item_size).chunk_size / item_size

    def used_bytes(self) -> int:
        """Bytes held by used chunks (chunk-granular accounting)."""
        return sum(c.used_chunks * c.chunk_size for c in self.classes)

    def assigned_bytes(self) -> int:
        """Bytes in pages assigned to classes (page-granular accounting)."""
        return self._pages_assigned * self.page_size

    # ----------------------------------------------------------------- ops

    def allocate(self, item_size: int) -> SlabClass:
        """Take one chunk for an item of *item_size*; returns its class.

        Grows the class by one page when it has no free chunk and unassigned
        pages remain.

        Raises:
            CapacityError: no free chunk and no free page — the caller (the
                store) should evict from the returned class and retry, which
                is exactly memcached's per-class LRU behaviour.
        """
        slab_class = self.class_for(item_size)
        if slab_class.free_chunks == 0:
            if self.pages_free == 0:
                raise CapacityError(
                    f"slab class {slab_class.class_id} "
                    f"(chunk {slab_class.chunk_size}B) is full and no pages "
                    "remain"
                )
            slab_class.pages += 1
            self._pages_assigned += 1
        slab_class.used_chunks += 1
        return slab_class

    def release(self, item_size: int) -> None:
        """Return the chunk held by an item of *item_size*."""
        slab_class = self.class_for(item_size)
        if slab_class.used_chunks == 0:
            raise ConfigurationError(
                f"release on empty slab class {slab_class.class_id}"
            )
        slab_class.used_chunks -= 1

    def stats(self) -> List[dict]:
        """Per-class stats in memcached ``stats slabs`` spirit."""
        return [
            {
                "class": c.class_id,
                "chunk_size": c.chunk_size,
                "pages": c.pages,
                "used_chunks": c.used_chunks,
                "free_chunks": c.free_chunks,
            }
            for c in self.classes
            if c.pages > 0
        ]


class SlabStore:
    """A key-value store with slab allocation and per-class LRU eviction.

    Mirrors :class:`~repro.cache.store.KeyValueStore`'s interface (get /
    set / delete / flush / hooks) but accounts memory the way memcached
    does: an item consumes a whole chunk of its slab class, and when a class
    runs out of chunks with no pages left, eviction happens *within that
    class* — memcached's classic slab-calcification behaviour, observable in
    tests.

    The link/unlink hooks match the plain store's, so a
    :class:`~repro.bloom.counting.CountingBloomFilter` digest attaches
    identically.
    """

    def __init__(
        self,
        capacity_bytes: int,
        page_size: int = DEFAULT_PAGE_SIZE,
        min_chunk: int = DEFAULT_MIN_CHUNK,
        growth: float = DEFAULT_GROWTH,
    ) -> None:
        from repro.cache.eviction import LRUPolicy
        from repro.cache.stats import CacheStats

        self.allocator = SlabAllocator(
            capacity_bytes, page_size=page_size, min_chunk=min_chunk,
            growth=growth,
        )
        self._items: dict = {}
        self._class_lru = {
            c.class_id: LRUPolicy() for c in self.allocator.classes
        }
        self._class_of: dict = {}  # key -> class_id
        self.stats = CacheStats()
        self.link_hooks: list = []
        self.unlink_hooks: list = []

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, key: str) -> bool:
        return key in self._items

    @property
    def used_bytes(self) -> int:
        """Chunk-granular memory in use."""
        return self.allocator.used_bytes()

    def peek(self, key: str):
        """Item without touching recency/stats."""
        return self._items.get(key)

    def get(self, key: str, now: float = 0.0):
        """Value for *key* or ``None``; lazily expires.

        Items created later in simulated time are invisible (see
        :meth:`repro.cache.store.KeyValueStore.get`).
        """
        item = self._items.get(key)
        if item is not None and item.expired(now):
            self._unlink(item, "expire")
            self.stats.record_expiration(item.size)
            item = None
        if item is not None and item.created_at > now:
            self.stats.record_get(hit=False)
            return None
        if item is None:
            self.stats.record_get(hit=False)
            return None
        item.touch(now)
        self._class_lru[self._class_of[key]].on_access(key)
        self.stats.record_get(hit=True)
        return item.value

    def set(
        self,
        key: str,
        value,
        now: float = 0.0,
        size: Optional[int] = None,
        ttl: Optional[float] = None,
        flags: int = 0,
    ):
        """Insert/overwrite *key*, evicting within its slab class if needed."""
        from repro.cache.item import CacheItem

        item_size = len(value) if size is None and isinstance(value, (bytes, bytearray)) else (size or 0)
        slab_class = self.allocator.class_for(item_size)  # may raise
        old = self._items.get(key)
        if old is not None:
            self._unlink(old, "delete")
            self.stats.bytes_stored -= old.size
            self.stats.items -= 1
        while True:
            try:
                self.allocator.allocate(item_size)
                break
            except CapacityError:
                victim_key = self._class_lru[slab_class.class_id].victim()
                victim = self._items[victim_key]
                self._unlink(victim, "evict")
                self.stats.record_eviction(victim.size)
        item = CacheItem(
            key=key, value=value, size=item_size, created_at=now,
            last_access=now,
            expires_at=None if ttl is None else now + ttl, flags=flags,
        )
        self._items[key] = item
        self._class_of[key] = slab_class.class_id
        self._class_lru[slab_class.class_id].on_link(key)
        for hook in self.link_hooks:
            hook(item)
        self.stats.record_set(size_delta=item.size, new_item=True)
        return item

    def delete(self, key: str, now: float = 0.0) -> bool:
        """Remove *key*; True if it was present and unexpired."""
        item = self._items.get(key)
        if item is None:
            return False
        if item.expired(now):
            self._unlink(item, "expire")
            self.stats.record_expiration(item.size)
            return False
        self._unlink(item, "delete")
        self.stats.record_delete(item.size)
        return True

    def flush(self) -> int:
        """Drop all items (pages stay assigned to their classes)."""
        dropped = list(self._items.values())
        for item in dropped:
            self._unlink(item, "flush")
        self.stats.bytes_stored = 0
        self.stats.items = 0
        return len(dropped)

    def slab_stats(self) -> List[dict]:
        """Per-class allocator stats."""
        return self.allocator.stats()

    def _unlink(self, item, reason: str) -> None:
        self._items.pop(item.key, None)
        class_id = self._class_of.pop(item.key)
        self._class_lru[class_id].on_unlink(item.key)
        self.allocator.release(item.size)
        for hook in self.unlink_hooks:
            hook(item, reason)
