"""Bounded key-value store with pluggable eviction and link/unlink hooks.

This is the in-memory heart of a cache server.  The hook pair
``on_link``/``on_unlink`` mirrors memcached's ``do_item_link`` /
``do_item_unlink`` — exactly the two functions the paper instruments to keep
the counting-Bloom-filter digest consistent with cache contents
(Section V-A3).  Every item that enters the store fires ``on_link`` once and
every item that leaves (delete, eviction, or lazy expiry) fires
``on_unlink`` once, so a digest driven by these hooks never deletes an
absent element — the property that rules out one of the two false-negative
sources (Section IV-A).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional

from repro.cache.eviction import EvictionPolicy, LRUPolicy
from repro.cache.item import DEFAULT_ITEM_SIZE, CacheItem
from repro.cache.stats import CacheStats
from repro.errors import CapacityError, ConfigurationError

LinkHook = Callable[[CacheItem], None]
UnlinkHook = Callable[[CacheItem, str], None]  # (item, reason)

#: unlink reasons passed to hooks
REASON_DELETE = "delete"
REASON_EVICT = "evict"
REASON_EXPIRE = "expire"
REASON_FLUSH = "flush"


class KeyValueStore:
    """A capacity-bounded dict of :class:`CacheItem` with eviction.

    Args:
        capacity_bytes: total accounting bytes allowed; ``None`` = unbounded.
        policy: eviction policy (default LRU, like memcached).
        default_item_size: accounting size used when a set does not specify
            one (the paper's 4 KB page unit).

    Time is supplied by the caller on every operation (``now``), so the same
    store works under the simulation clock and under wall-clock in the
    asyncio server.
    """

    def __init__(
        self,
        capacity_bytes: Optional[int] = None,
        policy: Optional[EvictionPolicy] = None,
        default_item_size: int = DEFAULT_ITEM_SIZE,
    ) -> None:
        if capacity_bytes is not None and capacity_bytes < 1:
            raise ConfigurationError(
                f"capacity_bytes must be >= 1 or None, got {capacity_bytes}"
            )
        self.capacity_bytes = capacity_bytes
        self.policy = policy if policy is not None else LRUPolicy()
        self.default_item_size = default_item_size
        self._items: Dict[str, CacheItem] = {}
        self._used_bytes = 0
        self.stats = CacheStats()
        self.link_hooks: List[LinkHook] = []
        self.unlink_hooks: List[UnlinkHook] = []

    # ------------------------------------------------------------- queries

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, key: str) -> bool:
        return key in self._items

    @property
    def used_bytes(self) -> int:
        """Accounting bytes currently stored."""
        return self._used_bytes

    def keys(self) -> Iterator[str]:
        """Iterate current keys (snapshot not guaranteed under mutation)."""
        return iter(self._items)

    def peek(self, key: str) -> Optional[CacheItem]:
        """Item for *key* without touching recency or stats; None if absent."""
        return self._items.get(key)

    # ----------------------------------------------------------------- ops

    def get(self, key: str, now: float = 0.0) -> Optional[Any]:
        """Value for *key*, or ``None`` on miss.  Lazily expires stale items.

        An item whose ``created_at`` lies in the future of *now* is treated
        as a miss (without unlinking): the simulation driver may process
        time-overlapping requests sequentially, and a write that completes
        at a later simulated time must not be visible to an earlier read —
        otherwise concurrent cache misses for one key (the dog pile) would
        silently free-ride on each other.
        """
        item = self._items.get(key)
        if item is not None and item.expired(now):
            self._unlink(item, REASON_EXPIRE)
            self.stats.record_expiration(item.size)
            item = None
        if item is not None and item.created_at > now:
            self.stats.record_get(hit=False)
            return None
        if item is None:
            self.stats.record_get(hit=False)
            return None
        item.touch(now)
        self.policy.on_access(key)
        self.stats.record_get(hit=True)
        return item.value

    def set(
        self,
        key: str,
        value: Any,
        now: float = 0.0,
        size: Optional[int] = None,
        ttl: Optional[float] = None,
        flags: int = 0,
    ) -> CacheItem:
        """Insert or overwrite *key*.

        Overwriting fires ``on_unlink`` for the old item and ``on_link`` for
        the new one (memcached replaces items rather than mutating them, and
        the digest counters must track that).

        Raises:
            CapacityError: the item alone exceeds capacity, or eviction
                cannot free enough space.
        """
        item_size = self.default_item_size if size is None else size
        if self.capacity_bytes is not None and item_size > self.capacity_bytes:
            raise CapacityError(
                f"item of {item_size} bytes exceeds capacity "
                f"{self.capacity_bytes}"
            )
        old = self._items.get(key)
        if old is not None:
            self._unlink(old, REASON_DELETE)
            self.stats.bytes_stored -= old.size
            self.stats.items -= 1
        self._make_room(item_size, now)
        item = CacheItem(
            key=key,
            value=value,
            size=item_size,
            created_at=now,
            last_access=now,
            expires_at=None if ttl is None else now + ttl,
            flags=flags,
        )
        self._link(item)
        self.stats.record_set(size_delta=item.size, new_item=True)
        return item

    def delete(self, key: str, now: float = 0.0) -> bool:
        """Remove *key*; returns True if it was present (and not expired)."""
        item = self._items.get(key)
        if item is None:
            return False
        if item.expired(now):
            self._unlink(item, REASON_EXPIRE)
            self.stats.record_expiration(item.size)
            return False
        self._unlink(item, REASON_DELETE)
        self.stats.record_delete(item.size)
        return True

    def purge_expired(self, now: float) -> int:
        """Eagerly remove every expired item; returns how many were removed."""
        stale = [item for item in self._items.values() if item.expired(now)]
        for item in stale:
            self._unlink(item, REASON_EXPIRE)
            self.stats.record_expiration(item.size)
        return len(stale)

    def flush(self) -> int:
        """Drop everything (power cycle / ``flush_all``); returns item count."""
        dropped = list(self._items.values())
        for item in dropped:
            self._unlink(item, REASON_FLUSH)
        self.stats.bytes_stored = 0
        self.stats.items = 0
        self.policy.reset()
        return len(dropped)

    def hot_keys(self, now: float, ttl: float) -> List[str]:
        """Keys touched within the last *ttl* seconds (Section II "hot" data)."""
        return [
            item.key for item in self._items.values() if item.is_hot(now, ttl)
        ]

    # ------------------------------------------------------------ internal

    def _make_room(self, needed: int, now: float) -> None:
        if self.capacity_bytes is None:
            return
        # Lazy-expire before evicting live data.
        if self._used_bytes + needed > self.capacity_bytes:
            self.purge_expired(now)
        while self._used_bytes + needed > self.capacity_bytes:
            victim_key = self.policy.victim()  # raises CapacityError if none
            victim = self._items[victim_key]
            self._unlink(victim, REASON_EVICT)
            self.stats.record_eviction(victim.size)

    def _link(self, item: CacheItem) -> None:
        self._items[item.key] = item
        self._used_bytes += item.size
        self.policy.on_link(item.key)
        for hook in self.link_hooks:
            hook(item)

    def _unlink(self, item: CacheItem, reason: str) -> None:
        self._items.pop(item.key, None)
        self._used_bytes -= item.size
        self.policy.on_unlink(item.key)
        for hook in self.unlink_hooks:
            hook(item, reason)
