"""Cache items — the ``(key, data)`` pairs of the paper's Section II.

The paper assumes every cached object has the same size (fixed-size pieces,
as in GFS/HDFS/Ceph chunking); we default ``size`` to the paper's 4 KB page
unit (Section VI-B) but keep it a per-item field so variable-size workloads
remain expressible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

#: The paper's Fig. 6 setting: "4KB data per page".
DEFAULT_ITEM_SIZE = 4096


@dataclass
class CacheItem:
    """One ``(key, data)`` pair stored by a cache server.

    Attributes:
        key: the data key (page title, user id, ...).
        value: the cached payload.
        size: accounting size in bytes (capacity is enforced against this).
        created_at: simulation time the item was linked.
        last_access: simulation time of the most recent get/set.
        expires_at: absolute expiry time, or ``None`` for no expiry.
        flags: opaque client flags (memcached protocol compatibility).
    """

    key: str
    value: Any
    size: int = DEFAULT_ITEM_SIZE
    created_at: float = 0.0
    last_access: float = field(default=0.0)
    expires_at: Optional[float] = None
    flags: int = 0

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError(f"item size must be >= 0, got {self.size}")
        if self.last_access < self.created_at:
            self.last_access = self.created_at

    def expired(self, now: float) -> bool:
        """True if the item's absolute expiry has passed."""
        return self.expires_at is not None and now >= self.expires_at

    def idle_time(self, now: float) -> float:
        """Seconds since the last access — the paper's "hot" test is
        ``idle_time < TTL``."""
        return now - self.last_access

    def is_hot(self, now: float, ttl: float) -> bool:
        """Section II definition: touched at least once in the past *ttl* seconds."""
        return self.idle_time(now) < ttl

    def touch(self, now: float) -> None:
        """Record an access."""
        self.last_access = now
