"""Fixed-size object chunking — the paper's Section II assumption, realized.

"Each object in cache is of the same size.  Even though the size of pages
or user accounts would vary considerably, they can be divided into
fixed-size pieces.  One piece is considered as the basic unit of objects in
cache."  This module is that division: a large value is split into
``piece_size`` chunks stored under derived keys, with a small manifest
under the original key.  All pieces of an object share the object's key
prefix for *routing* (``routing_key``), so they land on the same cache
server and migrate together during transitions — chunking composes with
Algorithm 2 without any coordination.

Wire format: the manifest value is ``b"chunked:<n>:<total_size>"``; piece
``i`` lives at ``<key>#<i>``.  Values at most ``piece_size`` bytes are
stored directly (no manifest), so small objects pay nothing.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.errors import ConfigurationError, ProtocolError

#: The paper's basic piece size (4 KB pages, Section VI-B).
DEFAULT_PIECE_SIZE = 4096

_MANIFEST_PREFIX = b"chunked:"


def piece_key(key: str, index: int) -> str:
    """The derived cache key of piece *index* of object *key*."""
    return f"{key}#{index}"


def routing_key(cache_key: str) -> str:
    """The key to *route* by: pieces route by their parent object's key."""
    base, sep, suffix = cache_key.rpartition("#")
    if sep and suffix.isdigit():
        return base
    return cache_key


def split(value: bytes, piece_size: int = DEFAULT_PIECE_SIZE) -> Tuple[bytes, List[bytes]]:
    """Split *value*; returns ``(manifest_or_value, pieces)``.

    For values that fit one piece, returns ``(value, [])`` — store directly.
    Otherwise returns the manifest to store under the object key and the
    piece payloads for the derived keys.
    """
    if piece_size < 1:
        raise ConfigurationError(f"piece_size must be >= 1, got {piece_size}")
    if len(value) <= piece_size:
        return value, []
    pieces = [
        value[offset: offset + piece_size]
        for offset in range(0, len(value), piece_size)
    ]
    manifest = _MANIFEST_PREFIX + f"{len(pieces)}:{len(value)}".encode("ascii")
    return manifest, pieces


def is_manifest(stored: bytes) -> bool:
    """True if *stored* is a chunking manifest rather than a direct value."""
    return stored.startswith(_MANIFEST_PREFIX)


def parse_manifest(stored: bytes) -> Tuple[int, int]:
    """``(num_pieces, total_size)`` from a manifest.

    Raises:
        ProtocolError: not a well-formed manifest.
    """
    if not is_manifest(stored):
        raise ProtocolError("not a chunking manifest")
    try:
        count_text, size_text = stored[len(_MANIFEST_PREFIX):].split(b":")
        count, total = int(count_text), int(size_text)
    except ValueError as exc:
        raise ProtocolError(f"malformed manifest {stored!r}") from exc
    if count < 1 or total < 0:
        raise ProtocolError(f"malformed manifest {stored!r}")
    return count, total


def join(manifest: bytes, pieces: List[Optional[bytes]]) -> bytes:
    """Reassemble an object; raises if any piece is missing or sizes clash.

    A missing piece means the object must be refetched whole from the
    database — partial objects are never served.
    """
    count, total = parse_manifest(manifest)
    if len(pieces) != count:
        raise ProtocolError(
            f"manifest expects {count} pieces, got {len(pieces)}"
        )
    if any(piece is None for piece in pieces):
        raise ProtocolError("missing piece; object must be refetched")
    value = b"".join(pieces)  # type: ignore[arg-type]
    if len(value) != total:
        raise ProtocolError(
            f"reassembled {len(value)} bytes, manifest says {total}"
        )
    return value


class ChunkingCacheAdapter:
    """Chunk-aware get/set over any ``get(key, now)`` / ``set(...)`` store.

    Wraps one cache server (or anything store-shaped).  ``set`` splits,
    ``get`` reassembles; a missing piece surfaces as a miss (``None``) and
    the stale manifest is deleted so the next write starts clean.

    When the backend can batch (``get_many_fn``), ``get`` fetches all of
    an object's pieces through **one** call instead of a piece-at-a-time
    loop — the manifest expansion is exactly where multiget amortization
    pays, since one logical get turns into N piece gets.
    """

    def __init__(
        self,
        get_fn: Callable,
        set_fn: Callable,
        delete_fn: Callable,
        piece_size: int = DEFAULT_PIECE_SIZE,
        get_many_fn: Optional[Callable] = None,
    ) -> None:
        if piece_size < 1:
            raise ConfigurationError(f"piece_size must be >= 1, got {piece_size}")
        self._get = get_fn
        self._set = set_fn
        self._delete = delete_fn
        self._get_many_fn = get_many_fn
        self.piece_size = piece_size

    @classmethod
    def over_server(cls, server, piece_size: int = DEFAULT_PIECE_SIZE):
        """Adapter over a :class:`~repro.cache.server.CacheServer` — piece
        reads go through the server's multiget."""
        return cls(
            server.get, server.set, server.delete, piece_size,
            get_many_fn=getattr(server, "get_many", None),
        )

    def _get_pieces(self, keys: List[str], now: float) -> dict:
        """Hit map for *keys*: one batched call when the backend offers
        one, else the compatibility loop."""
        if self._get_many_fn is not None:
            return self._get_many_fn(keys, now)
        hits = {}
        for key in keys:
            value = self._get(key, now)
            if value is not None:
                hits[key] = value
        return hits

    def set(self, key: str, value: bytes, now: float = 0.0) -> int:
        """Store *value* in pieces; returns how many cache sets were issued."""
        manifest, pieces = split(value, self.piece_size)
        self._set(key, manifest, now, len(manifest))
        for index, piece in enumerate(pieces):
            self._set(piece_key(key, index), piece, now, len(piece))
        return 1 + len(pieces)

    def get(self, key: str, now: float = 0.0) -> Optional[bytes]:
        """Reassembled value, or ``None`` if the object (or a piece) is gone."""
        stored = self._get(key, now)
        if stored is None:
            return None
        if not is_manifest(stored):
            return stored
        count, _total = parse_manifest(stored)
        derived = [piece_key(key, i) for i in range(count)]
        fetched = self._get_pieces(derived, now)
        pieces = [fetched.get(k) for k in derived]
        if any(piece is None for piece in pieces):
            # A piece was evicted independently: the object is unusable.
            self.delete(key, now)
            return None
        return join(stored, pieces)

    def delete(self, key: str, now: float = 0.0) -> bool:
        """Remove the manifest and every piece."""
        stored = self._get(key, now)
        if stored is not None and is_manifest(stored):
            count, _ = parse_manifest(stored)
            for index in range(count):
                self._delete(piece_key(key, index), now)
        return bool(self._delete(key, now))
