"""Cache-server counters, in the spirit of memcached's ``stats`` command."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass
class CacheStats:
    """Monotonic operation counters for one cache server.

    The paper's evaluation reads two derived quantities off these: the hit
    ratio (Fig. 6) and the per-server request load (Fig. 5's min/max ratio).
    """

    gets: int = 0
    hits: int = 0
    misses: int = 0
    sets: int = 0
    deletes: int = 0
    evictions: int = 0
    expirations: int = 0
    bytes_stored: int = 0
    items: int = 0

    def record_get(self, hit: bool) -> None:
        self.gets += 1
        if hit:
            self.hits += 1
        else:
            self.misses += 1

    def record_set(self, size_delta: int, new_item: bool) -> None:
        self.sets += 1
        self.bytes_stored += size_delta
        if new_item:
            self.items += 1

    def record_delete(self, size: int) -> None:
        self.deletes += 1
        self.bytes_stored -= size
        self.items -= 1

    def record_eviction(self, size: int) -> None:
        self.evictions += 1
        self.bytes_stored -= size
        self.items -= 1

    def record_expiration(self, size: int) -> None:
        self.expirations += 1
        self.bytes_stored -= size
        self.items -= 1

    @property
    def hit_ratio(self) -> float:
        """Hits over gets; 0.0 before any get."""
        return self.hits / self.gets if self.gets else 0.0

    @property
    def requests(self) -> int:
        """Total operations served (the Fig. 5 load metric)."""
        return self.gets + self.sets + self.deletes

    def as_dict(self) -> Dict[str, float]:
        """Flat dict for reports (memcached ``stats``-style)."""
        return {
            "gets": self.gets,
            "hits": self.hits,
            "misses": self.misses,
            "sets": self.sets,
            "deletes": self.deletes,
            "evictions": self.evictions,
            "expirations": self.expirations,
            "bytes_stored": self.bytes_stored,
            "items": self.items,
            "hit_ratio": self.hit_ratio,
        }

    def snapshot(self) -> "CacheStats":
        """A copy frozen at the current values."""
        return CacheStats(**{k: getattr(self, k) for k in (
            "gets", "hits", "misses", "sets", "deletes",
            "evictions", "expirations", "bytes_stored", "items",
        )})

    def diff(self, earlier: "CacheStats") -> "CacheStats":
        """Counter deltas since *earlier* (per-slot load accounting)."""
        return CacheStats(
            gets=self.gets - earlier.gets,
            hits=self.hits - earlier.hits,
            misses=self.misses - earlier.misses,
            sets=self.sets - earlier.sets,
            deletes=self.deletes - earlier.deletes,
            evictions=self.evictions - earlier.evictions,
            expirations=self.expirations - earlier.expirations,
            bytes_stored=self.bytes_stored - earlier.bytes_stored,
            items=self.items - earlier.items,
        )
