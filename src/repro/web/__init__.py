"""Web-server tier: Algorithm 2 data retrieval and connection pooling."""

from repro.web.frontend import (
    DEFAULT_CACHE_OP_LATENCY,
    DEFAULT_WEB_OVERHEAD,
    FetchPath,
    FetchResult,
    FetchStats,
    WebServer,
)
from repro.web.pool import ConnectionPool, PoolRegistry
from repro.web.replicated import ReplicatedFetchResult, ReplicatedWebServer

__all__ = [
    "ConnectionPool",
    "DEFAULT_CACHE_OP_LATENCY",
    "DEFAULT_WEB_OVERHEAD",
    "FetchPath",
    "FetchResult",
    "FetchStats",
    "PoolRegistry",
    "ReplicatedFetchResult",
    "ReplicatedWebServer",
    "WebServer",
]
