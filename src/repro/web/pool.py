"""Connection-pool accounting (the Apache Commons Pool of Section V-A2).

The paper's servlets keep singleton pools of memcached and MySQL connections
so request threads never pay connection setup.  In the simulation a "pool"
is a token bucket: acquiring beyond capacity either waits (adds latency) or
creates a new connection (adds the setup cost once).  The pool exists so the
ablation benches can show what connection churn would add to the Fig. 9
curves, and so the asyncio net layer has a natural client-side limiter.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import ConfigurationError


class ConnectionPool:
    """Token-bucket pool of connections to one backend.

    Args:
        capacity: maximum pooled (idle + busy) connections.
        setup_cost: seconds to establish a fresh connection when the pool is
            empty and below capacity.
    """

    def __init__(self, capacity: int = 32, setup_cost: float = 0.001) -> None:
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        if setup_cost < 0:
            raise ConfigurationError(f"setup_cost must be >= 0, got {setup_cost}")
        self.capacity = capacity
        self.setup_cost = setup_cost
        self._idle = 0
        self._busy = 0
        #: connections created over the pool's lifetime
        self.created = 0
        #: acquisitions that found an idle pooled connection
        self.reused = 0
        #: acquisitions that had to wait for a busy connection
        self.waited = 0
        #: unhealthy connections ejected instead of returned to the pool
        self.ejected = 0

    @property
    def busy(self) -> int:
        return self._busy

    @property
    def idle(self) -> int:
        return self._idle

    def acquire(self) -> float:
        """Take a connection; returns the latency cost of acquiring it.

        Idle connection: free.  Below capacity: pay ``setup_cost``.  At
        capacity: modelled as an immediate reuse of the oldest busy
        connection with zero extra cost but counted in ``waited`` (the
        simulator's request flows are sequential per user, so true blocking
        is rare; the counter makes contention visible).
        """
        if self._idle > 0:
            self._idle -= 1
            self._busy += 1
            self.reused += 1
            return 0.0
        if self._busy < self.capacity:
            self._busy += 1
            self.created += 1
            return self.setup_cost
        self.waited += 1
        return 0.0

    def release(self) -> None:
        """Return a connection to the pool."""
        if self._busy == 0:
            raise ConfigurationError("release without matching acquire")
        self._busy -= 1
        self._idle += 1

    def discard(self) -> None:
        """Eject a busy connection instead of pooling it again.

        The unhealthy-connection path: after a reset, timeout, or protocol
        desync the connection must not serve another request, so it leaves
        the pool entirely — the next :meth:`acquire` below capacity creates
        a replacement (paying ``setup_cost`` once), which is exactly how
        Commons Pool's ``invalidateObject`` behaves.
        """
        if self._busy == 0:
            raise ConfigurationError("discard without matching acquire")
        self._busy -= 1
        self.ejected += 1


class PoolRegistry:
    """Singleton-per-backend pools, as the paper's servlets hold them."""

    def __init__(self, capacity: int = 32, setup_cost: float = 0.001) -> None:
        self.capacity = capacity
        self.setup_cost = setup_cost
        self._pools: Dict[str, ConnectionPool] = {}

    def pool(self, backend: str) -> ConnectionPool:
        """The pool for *backend*, created on first use."""
        existing = self._pools.get(backend)
        if existing is None:
            existing = ConnectionPool(self.capacity, self.setup_cost)
            self._pools[backend] = existing
        return existing

    def total_created(self) -> int:
        """Connections created across all backends."""
        return sum(p.created for p in self._pools.values())
