"""Replicated data retrieval — Section III-E made operational.

The paper keeps ``r`` copies of each ``(key, data)`` pair via ``r``
consistent-hashing rings that share one virtual-node placement, so that a
crashed cache server does not turn every one of its keys into a database
read.  The read/write *decisions* — which replicas to probe, when a read
counts as a failover, which owners to repopulate — live in the sans-IO
:class:`~repro.core.retrieval.ReplicatedRetrievalEngine`;
:class:`ReplicatedWebServer` executes its commands against the simulated
substrate, exactly as :class:`~repro.web.frontend.WebServer` does for the
unreplicated Algorithm 2:

* **writes** go to every *distinct* replica owner (conflict probability per
  Eq. 3 is small, so usually ``r`` servers);
* **reads** try the replica owners in ring order, skipping servers the
  cluster has marked failed; only if every live replica misses does the
  request reach the database, after which all live replica owners are
  repopulated.

Transitions compose: the active count used for routing comes from the
shared :class:`~repro.core.transition.TransitionManager`, so provisioning
changes re-balance every ring identically (they share the placement).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.cache.cluster import CacheCluster
from repro.core.replication import ReplicatedProteusRouter
from repro.core.retrieval import (
    BatchCommand,
    Command,
    ProbeCache,
    ReadDatabase,
    ReplicatedRetrievalEngine,
    RetrievalConfig,
    RetrievalConfigMixin,
    SKIPPED,
    WriteBack,
)
from repro.database.cluster import DatabaseCluster
from repro.errors import ConfigurationError
from repro.sim.latency import Constant, LatencyModel
from repro.web.frontend import DEFAULT_CACHE_OP_LATENCY, DEFAULT_WEB_OVERHEAD


@dataclass
class ReplicatedFetchResult:
    """Outcome of one replicated retrieval."""

    key: str
    value: Any
    started: float
    completed: float
    #: replica owner that answered, or None if the DB (or the local
    #: hot-key cache) did
    served_by: Optional[int]
    #: how many replica owners were probed before an answer
    probes: int
    touched_database: bool
    #: True when the frontend-local hot-key cache served (no probes)
    local: bool = False

    @property
    def latency(self) -> float:
        return self.completed - self.started


class ReplicatedWebServer(RetrievalConfigMixin):
    """Algorithm-2-style retrieval over ``r`` replica rings with failover."""

    def __init__(
        self,
        server_id: int,
        cache: CacheCluster,
        database: DatabaseCluster,
        cache_latency: Optional[LatencyModel] = None,
        web_overhead: Optional[LatencyModel] = None,
        seed: int = 0,
        config: Optional[RetrievalConfig] = None,
    ) -> None:
        if not isinstance(cache.router, ReplicatedProteusRouter):
            raise ConfigurationError(
                "ReplicatedWebServer requires a cluster routed by "
                "ReplicatedProteusRouter"
            )
        self.server_id = server_id
        self.cache = cache
        self.router: ReplicatedProteusRouter = cache.router
        self.database = database
        self.cache_latency = cache_latency or Constant(DEFAULT_CACHE_OP_LATENCY)
        self.web_overhead = web_overhead or Constant(DEFAULT_WEB_OVERHEAD)
        self.engine = ReplicatedRetrievalEngine(cache.router, config=config)
        self._rng = random.Random((seed << 12) ^ server_id)

    # ------------------------------------------------------------- facade

    @property
    def failovers(self) -> int:
        """Reads answered by a non-primary replica (failover events)."""
        return self.engine.failovers

    @property
    def database_reads(self) -> int:
        """Reads that reached the database."""
        return self.engine.database_reads

    def _live_targets(self, key: str, num_active: int) -> List[int]:
        failed = self.cache.failed_servers()
        plan = self.router.read_plan(key, num_active, exclude=failed)
        return list(plan.targets)  # empty when every replica crashed: DB only

    def fetch(self, key: str, now: float) -> ReplicatedFetchResult:
        """Read *key* from the first live replica, else the database."""
        epochs = self.cache.routing_epochs(now)
        clock = now + self.web_overhead.sample(self._rng)
        steps = self.engine.retrieve(
            key, epochs, failed=self.cache.failed_servers(), now=now
        )
        result: Any = None
        try:
            while True:
                command = steps.send(result)
                if isinstance(command, ProbeCache):
                    server = self.cache.server(command.server_id)
                    if not server.state.serves_requests:
                        result = SKIPPED
                        continue
                    sample = self.cache_latency.sample(self._rng)
                    clock += sample
                    if self.hot_key_cache:
                        # Feed the observed per-probe latency into the
                        # armor's load EWMA (the d-choices signal).
                        self.engine.armor.loads.observe_latency(
                            command.server_id, sample
                        )
                    result = server.get(key, clock)
                elif isinstance(command, ReadDatabase):
                    response = self.database.get(key, clock)
                    clock = response.completion_time
                    result = response.value
                elif isinstance(command, WriteBack):
                    server = self.cache.server(command.server_id)
                    if server.state.serves_requests:
                        clock += self.cache_latency.sample(self._rng)
                        server.set(key, command.value, now=clock)
                    result = None
                else:  # pragma: no cover - replicated reads use three commands
                    raise ConfigurationError(
                        f"unexpected engine command: {command!r}"
                    )
        except StopIteration as stop:
            outcome = stop.value
        return ReplicatedFetchResult(
            key=key, value=outcome.value, started=now, completed=clock,
            served_by=outcome.served_by, probes=outcome.probes,
            touched_database=outcome.touched_database,
            local=outcome.local,
        )

    def fetch_many(
        self, keys: Iterable[str], now: float
    ) -> Dict[str, ReplicatedFetchResult]:
        """Read a whole key set, one multiget per replica owner per ring
        round; outcomes match looping :meth:`fetch` over the keys."""
        epochs = self.cache.routing_epochs(now)
        clock = now + self.web_overhead.sample(self._rng)
        steps = self.engine.retrieve_many(
            keys, epochs, failed=self.cache.failed_servers(), now=now
        )
        answers: Any = None
        try:
            while True:
                round_ = steps.send(answers)
                results = []
                done_times = []
                for command in round_:
                    answer, done = self._execute_batched(command, clock)
                    results.append(answer)
                    done_times.append(done)
                if done_times:
                    clock = max(done_times)
                answers = tuple(results)
        except StopIteration as stop:
            outcomes = stop.value
        return {
            key: ReplicatedFetchResult(
                key=key, value=outcome.value, started=now, completed=clock,
                served_by=outcome.served_by, probes=outcome.probes,
                touched_database=outcome.touched_database,
                local=outcome.local,
            )
            for key, outcome in outcomes.items()
        }

    def _execute_batched(
        self, command: Command, clock: float
    ) -> Tuple[Any, float]:
        """Perform one batched-round command; returns (answer, done time).

        The batch trio dispatches on the shared :class:`BatchCommand`
        shape (``reply_with``), not per-class checks.
        """
        if isinstance(command, BatchCommand):
            server = self.cache.server(command.server)
            if command.reply_with == "values":
                if not server.state.serves_requests:
                    return SKIPPED, clock
                sample = self.cache_latency.sample(self._rng)
                clock += sample
                if self.hot_key_cache:
                    self.engine.armor.loads.observe_latency(
                        command.server, sample
                    )
                hits = {}
                for key in command.keys:
                    value = server.get(key, clock)
                    if value is not None:
                        hits[key] = value
                return hits, clock
            if command.reply_with == "ack":
                if server.state.serves_requests:
                    clock += self.cache_latency.sample(self._rng)
                    for key, value in command.items:
                        server.set(key, value, now=clock)
                return None, clock
        if isinstance(command, ReadDatabase):
            response = self.database.get(command.key, clock)
            return response.value, response.completion_time
        raise ConfigurationError(f"unexpected batched command: {command!r}")

    def put(self, key: str, value: Any, now: float) -> List[int]:
        """Write *key* to every live distinct replica owner; returns them."""
        epochs = self.cache.routing_epochs(now)
        written: List[int] = []
        for target in self._live_targets(key, epochs.new):
            server = self.cache.server(target)
            if server.state.serves_requests:
                server.set(key, value, now=now)
                written.append(target)
        if self.hot_key_cache:
            # Digest-style invalidation: the local hot-key copy is stale
            # the moment the authoritative replicas change.
            self.engine.armor.invalidate(key)
        return written

    def put_many(
        self, items: Iterable[Tuple[str, Any]], now: float
    ) -> Dict[str, List[int]]:
        """Batched :meth:`put`: write each pair to its live replica owners.

        Writes are grouped per server (the way a client pipelines a
        ``set_multi``), but the stored values and the returned
        key -> written-servers map are identical to calling :meth:`put`
        per pair.  Duplicate keys collapse: the last value wins and the
        key is written once.
        """
        epochs = self.cache.routing_epochs(now)
        failed = self.cache.failed_servers()
        final: Dict[str, Any] = {}
        for key, value in items:
            final[key] = value
        written: Dict[str, List[int]] = {}
        grouped: Dict[int, List[str]] = {}
        for key in final:
            plan = self.router.read_plan(key, epochs.new, exclude=failed)
            live = [
                target
                for target in plan.targets
                if self.cache.server(target).state.serves_requests
            ]
            written[key] = live  # replica-ring order, as put() returns
            for target in live:
                grouped.setdefault(target, []).append(key)
        for target in sorted(grouped):
            server = self.cache.server(target)
            for key in grouped[target]:
                server.set(key, final[key], now=now)
        if self.hot_key_cache:
            for key in final:
                self.engine.armor.invalidate(key)
        return written
