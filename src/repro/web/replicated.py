"""Replicated data retrieval — Section III-E made operational.

The paper keeps ``r`` copies of each ``(key, data)`` pair via ``r``
consistent-hashing rings that share one virtual-node placement, so that a
crashed cache server does not turn every one of its keys into a database
read.  :class:`ReplicatedWebServer` is the read/write path on top of a
:class:`~repro.core.replication.ReplicatedProteusRouter`:

* **writes** go to every *distinct* replica owner (conflict probability per
  Eq. 3 is small, so usually ``r`` servers);
* **reads** try the replica owners in ring order, skipping servers the
  cluster has marked failed; only if every live replica misses does the
  request reach the database, after which all live replica owners are
  repopulated.

Transitions compose: the active count used for routing comes from the
shared :class:`~repro.core.transition.TransitionManager`, so provisioning
changes re-balance every ring identically (they share the placement).  The
old-owner digest path of Algorithm 2 applies per ring; for clarity and
because replication already covers the miss, this implementation falls back
to the database for keys whose *every* replica moved — a strictly more
conservative behaviour than the unreplicated fast path.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, List, Optional

from repro.cache.cluster import CacheCluster
from repro.core.replication import ReplicatedProteusRouter
from repro.database.cluster import DatabaseCluster
from repro.errors import ConfigurationError, RoutingError
from repro.sim.latency import Constant, LatencyModel
from repro.web.frontend import DEFAULT_CACHE_OP_LATENCY, DEFAULT_WEB_OVERHEAD


@dataclass
class ReplicatedFetchResult:
    """Outcome of one replicated retrieval."""

    key: str
    value: Any
    started: float
    completed: float
    #: replica owner that answered, or None if the DB did
    served_by: Optional[int]
    #: how many replica owners were probed before an answer
    probes: int
    touched_database: bool

    @property
    def latency(self) -> float:
        return self.completed - self.started


class ReplicatedWebServer:
    """Algorithm-2-style retrieval over ``r`` replica rings with failover."""

    def __init__(
        self,
        server_id: int,
        cache: CacheCluster,
        database: DatabaseCluster,
        cache_latency: Optional[LatencyModel] = None,
        web_overhead: Optional[LatencyModel] = None,
        seed: int = 0,
    ) -> None:
        if not isinstance(cache.router, ReplicatedProteusRouter):
            raise ConfigurationError(
                "ReplicatedWebServer requires a cluster routed by "
                "ReplicatedProteusRouter"
            )
        self.server_id = server_id
        self.cache = cache
        self.router: ReplicatedProteusRouter = cache.router
        self.database = database
        self.cache_latency = cache_latency or Constant(DEFAULT_CACHE_OP_LATENCY)
        self.web_overhead = web_overhead or Constant(DEFAULT_WEB_OVERHEAD)
        self._rng = random.Random((seed << 12) ^ server_id)
        #: reads answered by a non-primary replica (failover events)
        self.failovers = 0
        #: reads that reached the database
        self.database_reads = 0

    def _live_targets(self, key: str, num_active: int) -> List[int]:
        failed = self.cache.failed_servers()
        try:
            return self.router.read_targets(key, num_active, exclude=failed)
        except RoutingError:
            return []  # every replica crashed: only the DB can answer

    def fetch(self, key: str, now: float) -> ReplicatedFetchResult:
        """Read *key* from the first live replica, else the database."""
        epochs = self.cache.routing_epochs(now)
        clock = now + self.web_overhead.sample(self._rng)
        primary = self.router.route(key, epochs.new)
        targets = self._live_targets(key, epochs.new)
        value = None
        served_by: Optional[int] = None
        probes = 0
        for target in targets:
            server = self.cache.server(target)
            if not server.state.serves_requests:
                continue
            probes += 1
            clock += self.cache_latency.sample(self._rng)
            value = server.get(key, clock)
            if value is not None:
                served_by = target
                if target != primary:
                    # The ring-0 owner did not answer (crashed or missed):
                    # a replica covered for it.
                    self.failovers += 1
                break
        touched_db = value is None
        if touched_db:
            response = self.database.get(key, clock)
            clock = response.completion_time
            value = response.value
            self.database_reads += 1
        # Repopulate every live replica owner that missed (write-through).
        for target in targets:
            if target == served_by:
                continue
            server = self.cache.server(target)
            if server.state.serves_requests:
                clock += self.cache_latency.sample(self._rng)
                server.set(key, value, now=clock)
        return ReplicatedFetchResult(
            key=key, value=value, started=now, completed=clock,
            served_by=served_by, probes=probes, touched_database=touched_db,
        )

    def put(self, key: str, value: Any, now: float) -> List[int]:
        """Write *key* to every live distinct replica owner; returns them."""
        epochs = self.cache.routing_epochs(now)
        written: List[int] = []
        for target in self._live_targets(key, epochs.new):
            server = self.cache.server(target)
            if server.state.serves_requests:
                server.set(key, value, now=now)
                written.append(target)
        return written
