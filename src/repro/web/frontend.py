"""The simulated web-server tier: a latency-model driver for Algorithm 2.

The retrieval *decisions* — routing against old/new epochs, digest
consultation, false-positive classification, dog-pile coalescing,
:class:`~repro.core.retrieval.FetchPath` accounting — live in the sans-IO
:class:`~repro.core.retrieval.RetrievalEngine`.  A :class:`WebServer` only
executes the engine's commands against the simulated substrate: it charges
latency-model samples and connection-pool costs to a virtual clock and
performs the cache/database calls the commands name.

A web server owns no cluster state: it routes with the shared deterministic
router and consults the shared transition epoch
(:meth:`~repro.cache.cluster.CacheCluster.routing_epochs`), so any number
of web servers run the same logic and agree on every decision — the
paper's consistency objective.  The asyncio tier
(:class:`repro.net.webtier.AsyncProteusFrontend`) drives the *same* engine
over live TCP.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Iterable, Optional, Tuple

from repro.cache.cluster import CacheCluster
from repro.core.retrieval import (
    BatchCommand,
    CheckDigest,
    Command,
    CommandRound,
    FetchPath,
    FetchResult,
    FetchStats,
    LeaderWindowRegistry,
    ProbeCache,
    ReadDatabase,
    RetrievalConfig,
    RetrievalConfigMixin,
    RetrievalEngine,
    SERVER_UNAVAILABLE,
    WaitForLeader,
    WriteBack,
)
from repro.core.transition import RoutingEpochs
from repro.database.cluster import DatabaseCluster
from repro.errors import ConfigurationError
from repro.sim.latency import Constant, LatencyModel
from repro.web.pool import PoolRegistry

#: Default one-way cache operation latency (LAN RTT + memcached service).
DEFAULT_CACHE_OP_LATENCY = 0.001
#: Default servlet CPU overhead per request.
DEFAULT_WEB_OVERHEAD = 0.002


class WebServer(RetrievalConfigMixin):
    """One servlet container driving the shared retrieval engine.

    Args:
        server_id: id within the web tier (diagnostics only).
        cache: the cache tier (routing + transition epochs + servers).
        database: the authoritative sharded store.
        cache_latency: per-cache-operation latency model.
        web_overhead: per-request servlet processing model.
        pools: connection-pool registry (accounting; singleton per backend).
        seed: RNG seed for latency sampling.
        coalesce_misses: dog-pile protection (see
            :class:`~repro.core.retrieval.RetrievalConfig`); off by default
            as in the paper's evaluation.
        config: full engine options (overrides *coalesce_misses*); shared
            config surface via :class:`RetrievalConfigMixin`.
        admission: DB-path admission controller (typically a
            :class:`~repro.resilience.admission.VirtualQueueAdmission`);
            ``None`` admits everything.  When set, DB-path work over the
            depth bound is shed (:attr:`FetchPath.SHED`, value ``None``)
            while hits keep being served — the sim's queue-model mirror
            of the live frontend's admission control.
    """

    def __init__(
        self,
        server_id: int,
        cache: CacheCluster,
        database: DatabaseCluster,
        cache_latency: Optional[LatencyModel] = None,
        web_overhead: Optional[LatencyModel] = None,
        pools: Optional[PoolRegistry] = None,
        seed: int = 0,
        coalesce_misses: bool = False,
        config: Optional[RetrievalConfig] = None,
        admission=None,
    ) -> None:
        if server_id < 0:
            raise ConfigurationError(f"server_id must be >= 0, got {server_id}")
        self.server_id = server_id
        self.cache = cache
        self.database = database
        self.cache_latency = cache_latency or Constant(DEFAULT_CACHE_OP_LATENCY)
        self.web_overhead = web_overhead or Constant(DEFAULT_WEB_OVERHEAD)
        self.pools = pools or PoolRegistry()
        self.engine = RetrievalEngine(
            cache.router, coalesce_misses=coalesce_misses, config=config
        )
        self.engine.admission = admission
        self._rng = random.Random((seed << 16) ^ server_id)
        #: in-flight DB-fetch windows for dog-pile coalescing
        self._leaders = LeaderWindowRegistry()

    # ------------------------------------------------------------- facade

    @property
    def stats(self) -> FetchStats:
        """Per-path counters (owned by the engine)."""
        return self.engine.stats

    @property
    def admission(self):
        """The engine's DB-path admission controller (may be ``None``)."""
        return self.engine.admission

    def queue_depth(self, now: float) -> float:
        """Outstanding admitted DB work at *now* (0 without admission)."""
        if self.engine.admission is None:
            return 0.0
        return self.engine.admission.depth(now)

    # ------------------------------------------------------------- helpers

    def _cache_op(self, now: float) -> float:
        """Advance time by one cache round trip."""
        return now + self.cache_latency.sample(self._rng)

    # ----------------------------------------------------------- Algorithm 2

    def fetch(self, key: str, now: float) -> FetchResult:
        """Retrieve *key*, migrating it on demand if a transition is live."""
        epochs = self.cache.routing_epochs(now)
        clock = now + self.web_overhead.sample(self._rng)
        steps = self.engine.retrieve(key, epochs, now=now)
        result: Any = None
        try:
            while True:
                command = steps.send(result)
                result, clock = self._execute(command, key, epochs, clock)
        except StopIteration as stop:
            outcome = stop.value
        return FetchResult(
            key=key, value=outcome.value, path=outcome.path,
            started=now, completed=clock,
            new_server=outcome.new_server, old_server=outcome.old_server,
        )

    def _execute(
        self, command: Command, key: str, epochs: RoutingEpochs, clock: float
    ) -> Tuple[Any, float]:
        """Perform one engine command; returns (answer, advanced clock)."""
        if isinstance(command, ProbeCache):
            server = self.cache.server(command.server_id)
            pool = self.pools.pool(f"cache:{command.server_id}")
            clock += pool.acquire()
            clock = self._cache_op(clock)
            if not server.state.serves_requests:
                # Crashed/off server: the failed attempt still cost one
                # round trip; the connection is ejected, not re-pooled, and
                # the engine degrades around the dead server.
                pool.discard()
                return SERVER_UNAVAILABLE, clock
            value = server.get(key, clock)
            pool.release()
            return value, clock
        if isinstance(command, CheckDigest):
            transition = epochs.transition
            hit = transition is not None and transition.digest_hit(
                command.server_id, key, command.hashes
            )
            return hit, clock
        if isinstance(command, WaitForLeader):
            leader_done = self._leaders.leader_done(key, clock)
            if leader_done is None:
                return False, clock
            return True, leader_done
        if isinstance(command, ReadDatabase):
            db_pool = self.pools.pool("database")
            clock += db_pool.acquire()
            response = self.database.get(key, clock)
            db_pool.release()
            clock = response.completion_time
            if self.engine.admission is not None:
                # The admitted read occupies a virtual queue slot until
                # its completion time — the depth the controller bounds.
                self.engine.admission.db_finished(clock, completed=clock)
            if command.announce_leader:
                # Followers arriving before the write-back lands coalesce.
                self._leaders.announce(
                    key, clock + 2 * self.cache_latency.mean, now=clock
                )
            return response.value, clock
        if isinstance(command, WriteBack):
            clock = self._cache_op(clock)
            server = self.cache.server(command.server_id)
            if not server.state.serves_requests:
                return SERVER_UNAVAILABLE, clock
            server.set(key, command.value, now=clock)
            return None, clock
        raise ConfigurationError(f"unknown engine command: {command!r}")

    # ------------------------------------------------------ batched fetches

    def fetch_many(
        self, keys: Iterable[str], now: float
    ) -> Dict[str, FetchResult]:
        """Retrieve a whole key set through the engine's batch planner.

        One logical page request: probes and write-backs are grouped per
        owning server, so the batch charges **one latency sample per server
        touched per round** instead of one per key — commands within a
        round model concurrent fan-out (the clock advances by the slowest
        command of the round, as a real multiget fan-out would).  Values,
        paths, and :class:`FetchStats` counts are identical to looping
        :meth:`fetch` over the keys; the batch completes as a unit, so
        every key shares the batch's completion time.
        """
        epochs = self.cache.routing_epochs(now)
        clock = now + self.web_overhead.sample(self._rng)
        steps = self.engine.retrieve_many(keys, epochs, now=now)
        answers: Any = None
        try:
            while True:
                round_ = steps.send(answers)
                results = []
                done_times = []
                for command in round_:
                    answer, done = self._execute_batched(command, epochs, clock)
                    results.append(answer)
                    done_times.append(done)
                if done_times:
                    clock = max(done_times)
                answers = tuple(results)
        except StopIteration as stop:
            outcomes = stop.value
        return {
            key: FetchResult(
                key=key, value=outcome.value, path=outcome.path,
                started=now, completed=clock,
                new_server=outcome.new_server, old_server=outcome.old_server,
            )
            for key, outcome in outcomes.items()
        }

    def _execute_batched(
        self, command: Command, epochs: RoutingEpochs, clock: float
    ) -> Tuple[Any, float]:
        """Perform one batched-round command starting at *clock*; returns
        (answer, completion time).  Commands in a round all start at the
        round's base clock — they run concurrently.  The batch trio
        dispatches on the shared :class:`BatchCommand` shape
        (``reply_with``), not per-class checks."""
        if isinstance(command, BatchCommand):
            if command.reply_with == "membership":
                # Grouped digest consult: local bit tests against the
                # broadcast snapshot — no round trip, no clock charge.
                transition = epochs.transition
                if transition is None:
                    return [False] * len(command.keys), clock
                return (
                    transition.digest_hit_many(
                        command.server, command.keys, command.hashes
                    ),
                    clock,
                )
            server = self.cache.server(command.server)
            if command.reply_with == "values":
                pool = self.pools.pool(f"cache:{command.server}")
                clock += pool.acquire()
                clock = self._cache_op(clock)
                if not server.state.serves_requests:
                    pool.discard()
                    return SERVER_UNAVAILABLE, clock
                hits = {}
                for key in command.keys:
                    value = server.get(key, clock)
                    if value is not None:
                        hits[key] = value
                pool.release()
                return hits, clock
            # reply_with == "ack": pipelined write-backs
            clock = self._cache_op(clock)
            if not server.state.serves_requests:
                return SERVER_UNAVAILABLE, clock
            for key, value in command.items:
                server.set(key, value, now=clock)
            return None, clock
        if isinstance(command, CheckDigest):
            transition = epochs.transition
            hit = transition is not None and transition.digest_hit(
                command.server_id, command.key, command.hashes
            )
            return hit, clock
        if isinstance(command, WaitForLeader):
            leader_done = self._leaders.leader_done(command.key, clock)
            if leader_done is None:
                return False, clock
            return True, leader_done
        if isinstance(command, ReadDatabase):
            db_pool = self.pools.pool("database")
            clock += db_pool.acquire()
            response = self.database.get(command.key, clock)
            db_pool.release()
            clock = response.completion_time
            if self.engine.admission is not None:
                self.engine.admission.db_finished(clock, completed=clock)
            if command.announce_leader:
                self._leaders.announce(
                    command.key, clock + 2 * self.cache_latency.mean, now=clock
                )
            return response.value, clock
        raise ConfigurationError(f"unknown batched command: {command!r}")
