"""The web-server tier — Algorithm 2 ("Date Retrieval") lives here.

A :class:`WebServer` owns no cluster state: it routes with the shared
deterministic router, consults the shared transition epoch, and talks to the
cache and database tiers.  Any number of web servers can therefore run the
same logic and agree on every decision — the paper's consistency objective.

The data path for one request (paper Algorithm 2):

1. ``get`` from the *new* mapping's server ``s_{m^d_{t+1}}``; return on hit.
2. On miss *during a transition*, check the *old* owner's broadcast digest.
   On a digest hit, ``get`` from the old server (it is "hot" there); a
   ``None`` here is a digest false positive.
3. Still nothing: read the database (the DB never learns a transition is
   happening unless the digest missed or lied).
4. Write the value into the new server and return it.

Property 1 (Section IV-A): only the *first* request for a hot key touches
the old server; the write-back in step 4 makes every subsequent request a
step-1 hit.  Property 2: after TTL seconds every hot key has migrated, so
the old server can power off safely.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.cache.cluster import CacheCluster
from repro.database.cluster import DatabaseCluster
from repro.errors import ConfigurationError
from repro.sim.latency import Constant, LatencyModel
from repro.web.pool import PoolRegistry

#: Default one-way cache operation latency (LAN RTT + memcached service).
DEFAULT_CACHE_OP_LATENCY = 0.001
#: Default servlet CPU overhead per request.
DEFAULT_WEB_OVERHEAD = 0.002


class FetchPath(enum.Enum):
    """Which branch of Algorithm 2 served the request."""

    #: hit at the authoritative (new-mapping) server — Alg. 2 line 3.
    HIT_NEW = "hit_new"
    #: digest hit, data pulled from the old owner — Alg. 2 line 7 ("hot").
    HIT_OLD = "hit_old"
    #: digest said yes but the old server missed — false positive, went to DB.
    FALSE_POSITIVE_DB = "false_positive_db"
    #: digest said no (cold data) or no transition in flight — went to DB.
    MISS_DB = "miss_db"
    #: coalesced behind an in-flight DB fetch for the same key (dog-pile
    #: protection, the paper's reference [12] scenario).
    COALESCED = "coalesced"


@dataclass
class FetchResult:
    """Outcome and timing of one Algorithm-2 retrieval."""

    key: str
    value: Any
    path: FetchPath
    started: float
    completed: float
    new_server: int
    old_server: Optional[int] = None

    @property
    def latency(self) -> float:
        """End-to-end response time in seconds."""
        return self.completed - self.started

    @property
    def touched_database(self) -> bool:
        return self.path in (FetchPath.FALSE_POSITIVE_DB, FetchPath.MISS_DB)


@dataclass
class FetchStats:
    """Per-path counters for one web server."""

    counts: Dict[FetchPath, int] = field(
        default_factory=lambda: {path: 0 for path in FetchPath}
    )

    def record(self, path: FetchPath) -> None:
        self.counts[path] += 1

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    @property
    def database_fraction(self) -> float:
        """Fraction of requests that reached the DB tier."""
        total = self.total
        if total == 0:
            return 0.0
        db = (
            self.counts[FetchPath.FALSE_POSITIVE_DB]
            + self.counts[FetchPath.MISS_DB]
        )
        return db / total


class WebServer:
    """One servlet container executing Algorithm 2.

    Args:
        server_id: id within the web tier (diagnostics only).
        cache: the cache tier (routing + transition epochs + servers).
        database: the authoritative sharded store.
        cache_latency: per-cache-operation latency model.
        web_overhead: per-request servlet processing model.
        pools: connection-pool registry (accounting; singleton per backend).
        seed: RNG seed for latency sampling.
        coalesce_misses: dog-pile protection — while a DB fetch for a key is
            in flight, later misses for the same key wait for it instead of
            issuing duplicate DB reads (the "memcache dog pile" the paper's
            introduction cites).  Off by default: the paper's evaluation
            runs without it, and the Fig. 9 spike depends on the dog pile
            being possible.
    """

    def __init__(
        self,
        server_id: int,
        cache: CacheCluster,
        database: DatabaseCluster,
        cache_latency: Optional[LatencyModel] = None,
        web_overhead: Optional[LatencyModel] = None,
        pools: Optional[PoolRegistry] = None,
        seed: int = 0,
        coalesce_misses: bool = False,
    ) -> None:
        if server_id < 0:
            raise ConfigurationError(f"server_id must be >= 0, got {server_id}")
        self.server_id = server_id
        self.cache = cache
        self.database = database
        self.cache_latency = cache_latency or Constant(DEFAULT_CACHE_OP_LATENCY)
        self.web_overhead = web_overhead or Constant(DEFAULT_WEB_OVERHEAD)
        self.pools = pools or PoolRegistry()
        self.stats = FetchStats()
        self._rng = random.Random((seed << 16) ^ server_id)
        self.coalesce_misses = coalesce_misses
        #: key -> completion time of the in-flight DB fetch (leader request)
        self._inflight: Dict[str, float] = {}

    # ------------------------------------------------------------- helpers

    def _cache_op(self, now: float) -> float:
        """Advance time by one cache round trip."""
        return now + self.cache_latency.sample(self._rng)

    # ----------------------------------------------------------- Algorithm 2

    def fetch(self, key: str, now: float) -> FetchResult:
        """Retrieve *key*, migrating it on demand if a transition is live."""
        epochs = self.cache.routing_epochs(now)
        new_id = self.cache.router.route(key, epochs.new)
        pool = self.pools.pool(f"cache:{new_id}")
        clock = now + self.web_overhead.sample(self._rng) + pool.acquire()

        new_server = self.cache.server(new_id)
        clock = self._cache_op(clock)
        value = new_server.get(key, clock)
        pool.release()
        if value is not None:
            self.stats.record(FetchPath.HIT_NEW)
            return FetchResult(
                key=key, value=value, path=FetchPath.HIT_NEW,
                started=now, completed=clock, new_server=new_id,
            )

        old_id: Optional[int] = None
        path = FetchPath.MISS_DB
        if epochs.in_transition:
            old_id = self.cache.router.route(key, epochs.old)
            transition = epochs.transition
            if old_id != new_id and transition.digest_hit(old_id, key):
                old_pool = self.pools.pool(f"cache:{old_id}")
                clock += old_pool.acquire()
                clock = self._cache_op(clock)
                value = self.cache.server(old_id).get(key, clock)
                old_pool.release()
                path = (
                    FetchPath.HIT_OLD
                    if value is not None
                    else FetchPath.FALSE_POSITIVE_DB
                )

        if value is None:
            leader_done = self._inflight.get(key)
            if (
                self.coalesce_misses
                and leader_done is not None
                and clock < leader_done
            ):
                # Dog-pile protection: wait for the leader's fetch, then the
                # value is already installed at the new owner by its
                # write-back — one more cache get instead of a DB read.
                clock = leader_done
                clock = self._cache_op(clock)
                value = new_server.get(key, clock)
                if value is not None:
                    path = FetchPath.COALESCED
                    # The value was just read from the new owner; no
                    # write-back needed (and rewriting would push the item's
                    # creation time past later coalescing followers).
                    self.stats.record(path)
                    return FetchResult(
                        key=key, value=value, path=path, started=now,
                        completed=clock, new_server=new_id, old_server=old_id,
                    )
            if value is None:
                db_pool = self.pools.pool("database")
                clock += db_pool.acquire()
                response = self.database.get(key, clock)
                db_pool.release()
                clock = response.completion_time
                value = response.value
                if self.coalesce_misses:
                    # Followers arriving before clock+one write-back coalesce.
                    self._inflight[key] = clock + 2 * self.cache_latency.mean
                    if len(self._inflight) > 4096:
                        # Prune entries whose window has passed; the map
                        # stays bounded by the concurrent-miss key count.
                        self._inflight = {
                            k: t for k, t in self._inflight.items() if t > now
                        }

        # Alg. 2 line 12: install into the new owner so later requests hit.
        clock = self._cache_op(clock)
        new_server.set(key, value, now=clock)
        self.stats.record(path)
        return FetchResult(
            key=key, value=value, path=path, started=now, completed=clock,
            new_server=new_id, old_server=old_id,
        )
