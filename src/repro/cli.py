"""Command-line interface: ``python -m repro <command>``.

Operator-facing entry points for the library's main flows:

``place``          print the Algorithm 1 virtual-node placement for a fleet
``route``          route keys under any Table II scenario
``bloom-config``   the Section IV-B memory-optimal digest configuration
``trace-gen``      synthesize a diurnal Zipf trace to a CSV file
``trace-convert``  convert a WikiBench trace into the package trace format
``loadbalance``    Fig. 5-style min/max load table for a trace + schedule
``simulate``       run Table II scenarios end to end and print the summary
``autopilot``      run the online controller (optionally closed-loop) with
                   scripted faults and print the per-slot decision table
``config-init``    write the shared cluster-config JSON for a fleet

Every command writes plain text to stdout and exits non-zero on bad input,
so the CLI is scriptable; all randomness is seeded via ``--seed``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.errors import ProteusError


def _parse_counts(text: str) -> List[int]:
    try:
        counts = [int(part) for part in text.split(",") if part != ""]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected comma-separated integers, got {text!r}"
        )
    if not counts:
        raise argparse.ArgumentTypeError("schedule must not be empty")
    return counts


def _parse_fault(text: str):
    """``at:server[:clear_at]`` -> (at, server_id, clear_at-or-None)."""
    parts = text.split(":")
    if len(parts) not in (2, 3):
        raise argparse.ArgumentTypeError(
            f"expected at:server[:clear_at], got {text!r}"
        )
    try:
        at = float(parts[0])
        server_id = int(parts[1])
        clear_at = float(parts[2]) if len(parts) == 3 else None
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected at:server[:clear_at], got {text!r}"
        )
    return at, server_id, clear_at


def build_parser() -> argparse.ArgumentParser:
    from repro.core.registry import RING_BACKENDS, ROUTER_SCENARIOS
    from repro.provisioning.ttl import TTL_POLICIES

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Proteus (ICDCS 2013) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("place", help="print the Algorithm 1 placement")
    p.add_argument("num_servers", type=int)
    p.add_argument("--ring-size", type=int, default=2 ** 32)
    p.add_argument("--verify", action="store_true",
                   help="exactly verify the balance condition for every prefix")

    p = sub.add_parser("route", help="route keys to cache servers")
    p.add_argument("keys", nargs="+")
    p.add_argument("--servers", type=int, required=True)
    p.add_argument("--active", type=int, required=True)
    p.add_argument("--scenario", default="proteus",
                   choices=list(ROUTER_SCENARIOS.names))
    p.add_argument("--replicas", type=int, default=1)

    p = sub.add_parser("bloom-config", help="size the cache digest (Eq. 10)")
    p.add_argument("--kappa", type=int, required=True,
                   help="expected in-cache keys")
    p.add_argument("--hashes", type=int, default=4)
    p.add_argument("--pp", type=float, default=1e-4)
    p.add_argument("--pn", type=float, default=1e-4)

    p = sub.add_parser("trace-gen", help="synthesize a diurnal Zipf trace")
    p.add_argument("--out", required=True)
    p.add_argument("--duration", type=float, default=3600.0)
    p.add_argument("--rate", type=float, default=100.0)
    p.add_argument("--pages", type=int, default=100_000)
    p.add_argument("--alpha", type=float, default=0.9)
    p.add_argument("--peak-to-valley", type=float, default=2.0)
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("trace-convert",
                       help="convert a WikiBench trace to the package format")
    p.add_argument("source")
    p.add_argument("--out", required=True)

    p = sub.add_parser("loadbalance",
                       help="Fig. 5-style per-slot min/max load ratios")
    p.add_argument("--trace", required=True)
    p.add_argument("--servers", type=int, required=True)
    p.add_argument("--schedule", type=_parse_counts, required=True,
                   help="comma-separated active counts, one per slot")
    p.add_argument("--slot-seconds", type=float, required=True)
    p.add_argument("--scenario", default="proteus",
                   choices=list(ROUTER_SCENARIOS.names))

    p = sub.add_parser("autopilot",
                       help="run the online provisioning controller "
                            "(closed loop with --health-feedback)")
    p.add_argument("--users", type=_parse_counts,
                   default=[60, 48, 40, 32, 26, 24, 24, 26, 32, 40, 48, 56],
                   help="comma-separated concurrent-user counts, one per slot")
    p.add_argument("--slot-seconds", type=float, default=30.0)
    p.add_argument("--servers", type=int, default=8)
    p.add_argument("--min-servers", type=int, default=2)
    p.add_argument("--health-feedback", action="store_true",
                   help="close the loop: emergency scale-up on lost "
                        "capacity, scale-down vetoes while impaired")
    p.add_argument("--adaptive-ttl", action="store_true",
                   help="size each drain window from observed remap-miss "
                        "decay instead of the fixed --ttl")
    p.add_argument("--ttl", type=float, default=60.0,
                   help="fixed drain window (and the adaptive default)")
    p.add_argument("--kill", type=_parse_fault, action="append", default=[],
                   metavar="AT:SERVER[:CLEAR_AT]",
                   help="kill SERVER at AT seconds (repair at CLEAR_AT); "
                        "repeatable")
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("config-init",
                       help="write a shared cluster-config JSON")
    p.add_argument("--out", required=True)
    p.add_argument("--endpoints", required=True,
                   help="comma-separated host:port list, in provisioning order")
    p.add_argument("--keys-per-server", type=int, default=100_000)
    p.add_argument("--ttl", type=float, default=60.0)
    p.add_argument("--ttl-policy", default="fixed",
                   choices=list(TTL_POLICIES.names),
                   help="drain-window sizing policy "
                        "(adaptive learns from remap-miss decay)")
    p.add_argument("--replicas", type=int, default=1)
    p.add_argument("--name", default="proteus")

    p = sub.add_parser("simulate",
                       help="run Table II scenarios end to end")
    p.add_argument("--scenarios", default="static,naive,consistent,proteus")
    p.add_argument("--ring-backend", default="proteus",
                   choices=list(RING_BACKENDS.names),
                   help=RING_BACKENDS.help_text(
                       "placement backend for the smooth (Proteus) scenario"
                   ))
    p.add_argument("--servers", type=int, default=8)
    p.add_argument("--schedule", type=_parse_counts,
                   default=[6, 5, 4, 4, 5, 6])
    p.add_argument("--slot-seconds", type=float, default=60.0)
    p.add_argument("--users-per-server", type=int, default=20)
    p.add_argument("--ttl", type=float, default=40.0)
    p.add_argument("--seed", type=int, default=0)
    return parser


# ------------------------------------------------------------------ commands


def _cmd_place(args) -> int:
    from repro.core.placement import place_virtual_nodes, theoretical_min_vnodes

    placement = place_virtual_nodes(args.num_servers, args.ring_size)
    print(f"N={args.num_servers}  ring={args.ring_size}  "
          f"vnodes={placement.num_vnodes} "
          f"(Theorem 1 bound {theoretical_min_vnodes(args.num_servers)})")
    for rng in placement.ranges:
        share = rng.length / args.ring_size
        print(f"  server {rng.server:>3d}  start={float(rng.start):>16.1f}  "
              f"len={float(rng.length):>16.1f}  share={float(share):.6f}")
    if args.verify:
        placement.verify_balance()
        print("balance condition: verified exactly for every active prefix")
    return 0


def _cmd_route(args) -> int:
    from repro.core.replication import ReplicatedProteusRouter
    from repro.core.router import make_router

    if args.replicas > 1:
        if args.scenario != "proteus":
            print("--replicas > 1 requires --scenario proteus", file=sys.stderr)
            return 2
        router = ReplicatedProteusRouter(args.servers, replicas=args.replicas)
        for key in args.keys:
            owners = router.distinct_replica_servers(key, args.active)
            print(f"{key}\t{','.join(map(str, owners))}")
        return 0
    router = make_router(args.scenario, args.servers)
    for key in args.keys:
        print(f"{key}\t{router.route(key, args.active)}")
    return 0


def _cmd_bloom_config(args) -> int:
    from repro.bloom.config import optimal_config

    cfg = optimal_config(args.kappa, args.hashes, args.pp, args.pn)
    print(f"kappa={cfg.kappa} h={cfg.num_hashes} pp<={args.pp} pn<={args.pn}")
    print(f"counters (l)    = {cfg.num_counters}")
    print(f"counter bits(b) = {cfg.counter_bits}")
    print(f"memory          = {cfg.memory_bytes} bytes "
          f"({cfg.memory_bytes / 1024:.1f} KB)")
    print(f"achieved Gp     = {cfg.fp_bound:.3e}")
    print(f"achieved Gn     = {cfg.fn_bound:.3e}")
    return 0


def _cmd_trace_gen(args) -> int:
    from repro.workload.trace import save_trace
    from repro.workload.wikipedia import generate_trace

    records = generate_trace(
        duration=args.duration, mean_rate=args.rate, num_pages=args.pages,
        alpha=args.alpha, peak_to_valley=args.peak_to_valley, seed=args.seed,
    )
    count = save_trace(records, args.out)
    print(f"wrote {count} requests over {args.duration:.0f}s to {args.out}")
    return 0


def _cmd_trace_convert(args) -> int:
    from repro.workload.trace import save_trace
    from repro.workload.wikibench import convert_file

    records, stats = convert_file(args.source)
    save_trace(records, args.out)
    print(f"kept {stats.kept}/{stats.total_lines} lines "
          f"({stats.keep_ratio:.1%}): "
          f"{stats.non_english} non-English, {stats.non_article} non-article, "
          f"{stats.malformed} malformed")
    print(f"wrote {len(records)} records to {args.out}")
    return 0


def _cmd_loadbalance(args) -> int:
    from repro.core.router import make_router
    from repro.experiments.loadbalance import evaluate_load_balance
    from repro.provisioning.policies import ProvisioningSchedule
    from repro.workload.trace import load_trace

    trace = load_trace(args.trace)
    schedule = ProvisioningSchedule(args.slot_seconds, args.schedule)
    router = make_router(args.scenario, args.servers)
    result = evaluate_load_balance(router, trace, schedule)
    print(f"scenario={result.router_name} slots={schedule.num_slots}")
    for slot, ratio in enumerate(result.ratios()):
        print(f"  slot {slot:>3d}  n={schedule.counts[slot]:>3d}  "
              f"min/max={ratio:.3f}")
    print(f"mean={result.mean_ratio():.3f} worst={result.worst_ratio():.3f}")
    return 0


def _cmd_simulate(args) -> int:
    from repro.experiments.cluster import (
        ClusterExperiment,
        ExperimentConfig,
        ScenarioSpec,
    )
    from repro.provisioning.policies import ProvisioningSchedule

    wanted = [name.strip().lower() for name in args.scenarios.split(",")]
    available = {
        spec.name.lower(): spec
        for spec in ScenarioSpec.all_four(ring_backend=args.ring_backend)
    }
    # the smooth scenario keeps the plain "proteus" CLI name whatever the
    # backend; its report carries the qualified Proteus[<backend>] label.
    smooth = ScenarioSpec.proteus(ring_backend=args.ring_backend)
    available.setdefault("proteus", smooth)
    unknown = [name for name in wanted if name not in available]
    if unknown:
        print(f"unknown scenario(s): {', '.join(unknown)}", file=sys.stderr)
        return 2
    schedule = ProvisioningSchedule(args.slot_seconds, args.schedule)
    config = ExperimentConfig(
        schedule=schedule,
        users_per_slot=[n * args.users_per_server for n in schedule.counts],
        num_cache_servers=args.servers,
        ttl=args.ttl,
        seed=args.seed,
        warmup_seconds=min(20.0, args.slot_seconds / 3),
        plot_slots=max(12, 2 * schedule.num_slots),
        ring_backend=args.ring_backend,
    )
    print(f"schedule n(t) = {schedule.counts}  slot={args.slot_seconds}s")
    header = f"{'scenario':<12s}{'peak p99.9':>12s}{'db reads':>10s}" \
             f"{'hit':>8s}{'kWh total':>11s}{'kWh cache':>11s}"
    print(header)
    for name in wanted:
        report = ClusterExperiment(available[name], config).run()
        print(f"{report.scenario:<12s}{report.peak_latency():>11.3f}s"
              f"{report.db_requests:>10d}{report.hit_ratio:>8.3f}"
              f"{report.energy_kwh['total']:>11.4f}"
              f"{report.energy_kwh['cache']:>11.4f}")
    return 0


def _cmd_autopilot(args) -> int:
    from repro.experiments.autopilot import AutopilotConfig, AutopilotExperiment
    from repro.resilience import FaultPlan, FaultSchedule

    faults = FaultSchedule()
    for at, server_id, clear_at in args.kill:
        faults.add(at=at, server_id=server_id, plan=FaultPlan.killed(),
                   clear_at=clear_at)
    config = AutopilotConfig(
        users_per_slot=args.users,
        slot_seconds=args.slot_seconds,
        num_servers=args.servers,
        min_servers=args.min_servers,
        health_feedback=args.health_feedback,
        adaptive_ttl=args.adaptive_ttl,
        ttl_seconds=args.ttl,
        faults=faults,
        seed=args.seed,
    )
    report = AutopilotExperiment(config).run()
    print(f"{report.config_label}: {len(args.users)} slots x "
          f"{args.slot_seconds:.0f}s, fleet {args.servers}, "
          f"{len(args.kill)} scripted fault(s)")
    print(f"{'slot':>5s}{'rate':>8s}{'delay':>8s}{'active':>8s}"
          f"{'healthy':>8s}{'required':>9s}{'failed':>8s}")
    for slot in range(len(report.active_counts)):
        failed = ",".join(map(str, sorted(report.failed_sets[slot]))) or "-"
        print(f"{slot:>5d}{report.arrival_rates[slot]:>8.1f}"
              f"{report.measured_delays[slot]:>8.3f}"
              f"{report.active_counts[slot]:>8d}"
              f"{report.healthy_counts[slot]:>8d}"
              f"{report.required_counts[slot]:>9d}{failed:>8s}")
    print(f"availability={report.availability:.4f} "
          f"p99={report.latency_percentile(99.0):.3f}s "
          f"energy={report.energy_kwh.get('total', 0.0):.4f}kWh")
    print(f"emergency scale-ups={report.emergency_scale_ups} "
          f"vetoed scale-downs={report.vetoed_scale_downs} "
          f"remap misses={report.remap_misses_total}")
    if report.ttls_used:
        windows = ", ".join(f"{ttl:.1f}" for ttl in report.ttls_used)
        print(f"drain windows used: {windows}")
    return 0


def _cmd_config_init(args) -> int:
    from repro.config import ClusterConfig

    endpoints = []
    for entry in args.endpoints.split(","):
        entry = entry.strip()
        host, _, port_text = entry.rpartition(":")
        if not host or not port_text.isdigit():
            print(f"error: bad endpoint {entry!r} (want host:port)",
                  file=sys.stderr)
            return 2
        endpoints.append((host, int(port_text)))
    config = ClusterConfig.for_fleet(
        endpoints,
        expected_keys_per_server=args.keys_per_server,
        ttl_seconds=args.ttl,
        ttl_policy=args.ttl_policy,
        replicas=args.replicas,
        name=args.name,
    )
    config.save(args.out)
    print(f"wrote {args.out}: {config.num_servers} servers, "
          f"digest l={config.digest.num_counters} b={config.digest.counter_bits}, "
          f"ttl={config.ttl_seconds}s ({config.ttl_policy}), "
          f"replicas={config.replicas}")
    return 0


_COMMANDS = {
    "place": _cmd_place,
    "config-init": _cmd_config_init,
    "route": _cmd_route,
    "bloom-config": _cmd_bloom_config,
    "trace-gen": _cmd_trace_gen,
    "trace-convert": _cmd_trace_convert,
    "loadbalance": _cmd_loadbalance,
    "simulate": _cmd_simulate,
    "autopilot": _cmd_autopilot,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ProteusError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
